package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"safetynet/internal/campaign"
	"safetynet/internal/runner"
)

// startDaemonWith is startDaemon with full Options control (lease TTL,
// workers-only) for the distributed-worker tests.
func startDaemonWith(t *testing.T, opts Options) *daemon {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); s.Run(ctx) }()
	ts := httptest.NewServer(s.Handler())
	cl := NewClient(ts.URL)
	cl.HTTPClient = ts.Client()
	d := &daemon{s: s, ts: ts, cl: cl, cancel: cancel, done: done}
	t.Cleanup(d.stop)
	return d
}

// startWorker runs one pull worker against the daemon until the test
// ends.
func startWorker(t *testing.T, d *daemon, id string) {
	t.Helper()
	w := NewWorker(d.ts.URL, id)
	w.Client.HTTPClient = d.ts.Client()
	w.Poll = 10 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
}

// countRecords tallies checkpoint-log lines per expansion index,
// failing on any line that does not parse (a torn tail that was
// appended over, for instance).
func countRecords(t *testing.T, dir, id string) map[int]int {
	t.Helper()
	perIndex := map[int]int{}
	ents, err := os.ReadDir(filepath.Join(dir, "jobs", id))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "shard-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, "jobs", id, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
			if len(line) == 0 {
				continue
			}
			var r Record
			if err := json.Unmarshal(line, &r); err != nil {
				t.Fatalf("%s: unparseable record line %q: %v", e.Name(), line, err)
			}
			perIndex[r.Index]++
		}
	}
	return perIndex
}

// assertOneRecordPerIndex is the no-duplicated-work invariant: every
// expansion index checkpointed exactly once, across all shard logs and
// worker generations.
func assertOneRecordPerIndex(t *testing.T, dir, id string, total int) {
	t.Helper()
	perIndex := countRecords(t, dir, id)
	if len(perIndex) != total {
		t.Fatalf("records cover %d/%d indices", len(perIndex), total)
	}
	for i, n := range perIndex {
		if n != 1 {
			t.Fatalf("run %d checkpointed %d times; work was duplicated", i, n)
		}
	}
}

// metricValue scrapes one integer gauge/counter off /metrics.
func metricValue(t *testing.T, d *daemon, name string) int {
	t.Helper()
	resp, err := d.ts.Client().Get(d.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatalf("metric %s = %q: %v", name, fields[1], err)
			}
			return n
		}
	}
	t.Fatalf("metric %s not exported", name)
	return 0
}

// TestDistributedWorkersByteIdentical: a workers-only daemon never
// executes in-process; two pull workers lease its shards over HTTP and
// the final report is byte-identical to an uninterrupted local
// single-worker run in every format.
func TestDistributedWorkersByteIdentical(t *testing.T) {
	dir := t.TempDir()
	d := startDaemonWith(t, Options{
		StoreDir: dir, Workers: 4, CheckpointEvery: 1,
		WorkersOnly: true, LeaseTTL: 2 * time.Second,
	})
	c := testCampaign()
	st, err := d.cl.Submit(context.Background(), encodeCampaign(t, c), 0)
	if err != nil {
		t.Fatal(err)
	}

	startWorker(t, d, "w0")
	startWorker(t, d, "w1")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fin, err := d.cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Done != 8 {
		t.Fatalf("final status = %+v", fin)
	}

	assertOneRecordPerIndex(t, dir, st.ID, 8)
	for _, format := range []string{"text", "json", "csv"} {
		served, err := d.cl.Report(context.Background(), st.ID, format)
		if err != nil {
			t.Fatal(err)
		}
		if want := localReport(t, c, format); !bytes.Equal(served, want) {
			t.Fatalf("%s report from distributed workers differs from local run:\n--- served ---\n%s\n--- local ---\n%s",
				format, served, want)
		}
	}

	// Every shard was leased at least once, all of them to remote
	// workers, and the daemon saw the fleet.
	if n := metricValue(t, d, "snserved_leases_granted_total"); n < 4 {
		t.Fatalf("leases granted = %d, want >= 4 (one per shard)", n)
	}
	if n := metricValue(t, d, "snserved_workers_live"); n < 1 {
		t.Fatalf("workers live = %d, want >= 1", n)
	}
}

// TestWorkerDeathFencingAndResume is the chaos acceptance property in
// miniature, made deterministic by playing the doomed worker by hand:
// it leases the (single) shard, checkpoints one record, and vanishes
// without heartbeating. After the TTL its heartbeat is rejected (410),
// the shard re-leases at a strictly higher token, the dead worker's
// late record push is fenced mid-flight (409) without committing
// anything, and a healthy worker finishes the campaign — byte-identical
// report, no index executed twice.
func TestWorkerDeathFencingAndResume(t *testing.T) {
	const ttl = 300 * time.Millisecond
	dir := t.TempDir()
	d := startDaemonWith(t, Options{
		StoreDir: dir, Workers: 1, CheckpointEvery: 1,
		WorkersOnly: true, LeaseTTL: ttl,
	})
	c := testCampaign()
	ctx := context.Background()

	// Precompute the doomed worker's two records before leasing: the
	// results are deterministic pure functions of the run configs, and
	// computing them up front keeps the lease fresh (a raced test run is
	// slow enough that simulating under a 300ms TTL would expire it).
	runs, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rcs := campaign.RunConfigs(runs, nil)
	res0, err := runner.RunCtx(ctx, rcs[0])
	if err != nil {
		t.Fatal(err)
	}
	res1, err := runner.RunCtx(ctx, rcs[1])
	if err != nil {
		t.Fatal(err)
	}

	st, err := d.cl.Submit(ctx, encodeCampaign(t, c), 0)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker leases the shard (polling until the scheduler
	// picks the job up) and checkpoints exactly one record.
	var g *LeaseGrant
	deadline := time.Now().Add(time.Minute)
	for g == nil {
		if g, err = d.cl.Lease(ctx, "doomed"); err != nil {
			t.Fatal(err)
		}
		if g == nil {
			if time.Now().After(deadline) {
				t.Fatal("job never became leasable")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if g.Shards != 1 || g.Shard != 0 || len(g.Pending) != 8 || g.Pending[0] != 0 {
		t.Fatalf("grant = %+v, want the whole 8-run campaign as one shard", g)
	}
	accepted, err := d.cl.PushRecords(ctx, "doomed", RecordsPush{
		Job: g.Job, Shard: g.Shard, Token: g.Token,
		Records: []Record{{Index: 0, Result: res0}},
	})
	if err != nil || accepted != 1 {
		t.Fatalf("first push = (%d, %v), want (1, nil)", accepted, err)
	}
	// A replay of the same record is idempotent: accepted 0, no error.
	accepted, err = d.cl.PushRecords(ctx, "doomed", RecordsPush{
		Job: g.Job, Shard: g.Shard, Token: g.Token,
		Records: []Record{{Index: 0, Result: res0}},
	})
	if err != nil || accepted != 0 {
		t.Fatalf("replayed push = (%d, %v), want (0, nil)", accepted, err)
	}

	// The worker now "dies": no heartbeats. Well past the TTL its lease
	// is gone and a late heartbeat is rejected with 410.
	time.Sleep(3 * ttl)
	var api *APIError
	err = d.cl.Heartbeat(ctx, "doomed", Heartbeat{Job: g.Job, Shard: g.Shard, Token: g.Token})
	if !errors.As(err, &api) || api.Status != http.StatusGone {
		t.Fatalf("post-expiry heartbeat err = %v, want HTTP 410", err)
	}

	// The shard re-leases to a new worker at a strictly higher fencing
	// token, with the checkpointed record excluded from pending.
	g2, err := d.cl.Lease(ctx, "taker")
	if err != nil || g2 == nil {
		t.Fatalf("re-lease = (%v, %v), want a grant", g2, err)
	}
	if g2.Token <= g.Token {
		t.Fatalf("re-lease token %d not greater than %d", g2.Token, g.Token)
	}
	if len(g2.Pending) != 7 || g2.Pending[0] != 1 {
		t.Fatalf("re-lease pending = %v, want the 7 unexecuted runs", g2.Pending)
	}
	for _, i := range g2.Pending {
		if i == 0 {
			t.Fatalf("checkpointed run %d re-offered for execution", i)
		}
	}

	// The dead worker returns from its partition and streams a record
	// under its old token: fenced mid-flight, nothing committed.
	_, err = d.cl.PushRecords(ctx, "doomed", RecordsPush{
		Job: g.Job, Shard: g.Shard, Token: g.Token,
		Records: []Record{{Index: 1, Result: res1}},
	})
	if !errors.As(err, &api) || api.Status != http.StatusConflict {
		t.Fatalf("stale-token push err = %v, want HTTP 409", err)
	}
	cur, err := d.cl.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Done != 1 {
		t.Fatalf("done = %d after fenced push, want 1 (the fenced record must not commit)", cur.Done)
	}

	// A healthy worker picks the shard up once the taker's untended
	// lease lapses, and finishes the campaign.
	startWorker(t, d, "phoenix")
	wctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	fin, err := d.cl.Wait(wctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Done != 8 {
		t.Fatalf("final status = %+v", fin)
	}

	assertOneRecordPerIndex(t, dir, st.ID, 8)
	for _, format := range []string{"text", "json", "csv"} {
		served, err := d.cl.Report(ctx, st.ID, format)
		if err != nil {
			t.Fatal(err)
		}
		if want := localReport(t, c, format); !bytes.Equal(served, want) {
			t.Fatalf("%s report differs after worker death and re-lease:\n--- served ---\n%s\n--- local ---\n%s",
				format, served, want)
		}
	}
	if n := metricValue(t, d, "snserved_leases_expired_total"); n < 2 {
		t.Fatalf("leases expired = %d, want >= 2 (doomed and taker)", n)
	}
	if n := metricValue(t, d, "snserved_releases_total"); n < 2 {
		t.Fatalf("re-leases = %d, want >= 2", n)
	}
	if n := metricValue(t, d, "snserved_leases_fenced_total"); n < 2 {
		t.Fatalf("fenced rejections = %d, want >= 2 (heartbeat and push)", n)
	}
}

// TestTornTailWorkerResume: a shard log ending in the half-written line
// a kill -9 leaves behind is repaired on resume — the torn tail is
// trimmed, the intact records are not re-executed, and the re-leased
// worker's appends land on fresh lines, so the final report is
// byte-identical and every index has exactly one parseable record.
func TestTornTailWorkerResume(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := testCampaign()
	m, err := store.Create(encodeCampaign(t, c), Meta{Name: c.Name, Runs: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-seed shard 0 (of 2: indices 0, 2, 4, 6) with the real results
	// of its first two runs, then tear the log mid-append.
	runs, err := c.Expand()
	if err != nil {
		t.Fatal(err)
	}
	rcs := campaign.RunConfigs(runs, nil)
	log, err := store.OpenShardLog(m.ID, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		res, err := runner.RunCtx(context.Background(), rcs[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := log.Append(Record{Index: i, Result: res}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jobs", m.ID, "shard-0000.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":4,"result":{"IPC":1.`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A fresh daemon recovers the queued job; a worker executes only
	// what was never checkpointed.
	d := startDaemonWith(t, Options{
		StoreDir: dir, Workers: 2, CheckpointEvery: 1,
		WorkersOnly: true, LeaseTTL: 2 * time.Second,
	})
	startWorker(t, d, "resumer")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	fin, err := d.cl.Wait(ctx, m.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || fin.Done != 8 {
		t.Fatalf("final status = %+v", fin)
	}

	// One parseable record per index: the torn fragment is gone (an
	// untrimmed tail would have merged with the first resumed append and
	// failed to parse) and indices 0 and 2 were not re-executed.
	assertOneRecordPerIndex(t, dir, m.ID, 8)
	served, err := d.cl.Report(ctx, m.ID, "text")
	if err != nil {
		t.Fatal(err)
	}
	if want := localReport(t, c, "text"); !bytes.Equal(served, want) {
		t.Fatalf("report differs after torn-tail resume:\n--- served ---\n%s\n--- local ---\n%s", served, want)
	}
}

// TestShardLogTornTailTrimmedOnReopen exercises the repair directly: a
// reopened log with a torn tail truncates it, and subsequent appends
// parse cleanly alongside the intact prefix.
func TestShardLogTornTailTrimmedOnReopen(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := store.Create(encodeCampaign(t, testCampaign()), Meta{Name: "torn", Runs: 8})
	if err != nil {
		t.Fatal(err)
	}
	log, err := store.OpenShardLog(m.ID, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(Record{Index: 0, Result: runner.RunResult{IPC: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jobs", m.ID, "shard-0000.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":1,"result":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	log, err = store.OpenShardLog(m.ID, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(Record{Index: 1, Result: runner.RunResult{IPC: 1.5}}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := store.LoadRecords(m.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].IPC != 0.5 || recs[1].IPC != 1.5 {
		t.Fatalf("records after torn-tail repair = %+v, want indices 0 and 1 intact", recs)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("line %q unparseable: the torn tail was not trimmed", line)
		}
	}
}

// TestRetryTransient: 5xx and transport failures retry under the
// policy's backoff; 4xx rejections fail immediately.
func TestRetryTransient(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	fail := 2
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= fail {
			httpError(w, http.StatusServiceUnavailable, "still warming up")
			return
		}
		writeJSON(w, http.StatusOK, JobStatus{ID: "c000001", State: StateDone, Runs: 8, Done: 8})
	}))
	defer ts.Close()

	cl := NewClient(ts.URL)
	cl.Retry = &RetryPolicy{Attempts: 5, Base: time.Millisecond, Max: 4 * time.Millisecond}
	st, err := cl.Status(context.Background(), "c000001")
	if err != nil {
		t.Fatalf("status after transient 503s: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("status = %+v", st)
	}
	mu.Lock()
	if attempts != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two 503s then success)", attempts)
	}
	// A 4xx is not transient: exactly one more request, immediate error.
	attempts, fail = 0, 0
	mu.Unlock()
	ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		attempts++
		mu.Unlock()
		httpError(w, http.StatusBadRequest, "no such thing")
	})
	var api *APIError
	if _, err := cl.Status(context.Background(), "c000001"); !errors.As(err, &api) || api.Status != http.StatusBadRequest {
		t.Fatalf("4xx err = %v, want APIError 400", err)
	}
	mu.Lock()
	if attempts != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1 (no retry)", attempts)
	}
	mu.Unlock()

	// Transient classification itself.
	if Transient(nil) || Transient(context.Canceled) || Transient(&APIError{Status: 404}) {
		t.Fatal("nil/canceled/4xx misclassified as transient")
	}
	if !Transient(&APIError{Status: 503}) || !Transient(fmt.Errorf("dial tcp: connection refused")) {
		t.Fatal("5xx/transport errors misclassified as permanent")
	}
}
