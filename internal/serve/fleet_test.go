package serve

import (
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"safetynet/internal/campaign"
)

// buildWorkerBinary compiles cmd/snworker into the test's temp dir so the
// fleet below runs as real OS processes, not in-process goroutines.
func buildWorkerBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "snworker")
	cmd := exec.Command("go", "build", "-o", bin, "safetynet/cmd/snworker")
	cmd.Dir = filepath.Join("..", "..") // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building snworker: %v\n%s", err, out)
	}
	return bin
}

// startWorkerProcess launches one snworker process against the daemon and
// returns its stderr buffer. The process is SIGTERMed (clean shutdown) at
// test cleanup; the test fails if it is not still running by then — the
// fleet must outlive every job it drains.
func startWorkerProcess(t *testing.T, bin, url, id string) *exec.Cmd {
	t.Helper()
	var stderr bytes.Buffer
	cmd := exec.Command(bin, "-addr", url, "-id", id, "-poll", "20ms")
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState != nil {
			t.Errorf("worker %s exited before the fleet was shut down:\n%s", id, stderr.String())
			return
		}
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Errorf("stopping worker %s: %v", id, err)
		}
		if err := cmd.Wait(); err != nil {
			t.Errorf("worker %s did not shut down cleanly: %v\n%s", id, err, stderr.String())
		}
	})
	return cmd
}

// fleetCampaign is one of the five queued campaigns: seeds staggered per
// campaign so the five reports are all distinct.
func fleetCampaign(i int) *campaign.Campaign {
	c := testCampaign()
	c.Name = fmt.Sprintf("fleet-%d", i)
	c.Seeds = &campaign.SeedRange{Start: uint64(1 + 10*i), Count: 2}
	return c
}

// TestWorkerFleetDrainsQueuedCampaigns closes ROADMAP item 1's leftover:
// five campaigns queued into one snserved daemon, drained entirely by a
// two-process snworker fleet that outlives each job, every report
// byte-identical to an uninterrupted local single-worker run.
func TestWorkerFleetDrainsQueuedCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a multi-process worker fleet")
	}
	bin := buildWorkerBinary(t)
	d := startDaemonWith(t, Options{
		StoreDir: t.TempDir(), Workers: 2, CheckpointEvery: 1,
		WorkersOnly: true, LeaseTTL: 5 * time.Second,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Queue all five jobs before any worker exists: the fleet drains a
	// backlog, not a trickle.
	const jobs = 5
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		st, err := d.cl.Submit(ctx, encodeCampaign(t, fleetCampaign(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = st.ID
	}

	startWorkerProcess(t, bin, d.ts.URL, "fleet-a")
	startWorkerProcess(t, bin, d.ts.URL, "fleet-b")

	for i, id := range ids {
		fin, err := d.cl.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
		if fin.State != StateDone || fin.Done != 8 {
			t.Fatalf("campaign %d final status = %+v", i, fin)
		}
	}

	// Reports match local runs in every served format. The fleet is
	// still alive here — the cleanup hooks assert that too.
	for i, id := range ids {
		for _, format := range []string{"text", "json", "csv"} {
			served, err := d.cl.Report(ctx, id, format)
			if err != nil {
				t.Fatal(err)
			}
			if want := localReport(t, fleetCampaign(i), format); !bytes.Equal(served, want) {
				t.Fatalf("campaign %d %s report from the fleet differs from the local run:\n--- served ---\n%s\n--- local ---\n%s",
					i, format, served, want)
			}
		}
		assertOneRecordPerIndex(t, d.s.opts.StoreDir, id, 8)
	}
}
