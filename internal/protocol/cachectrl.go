package protocol

import (
	"fmt"

	"safetynet/internal/cache"
	"safetynet/internal/config"
	"safetynet/internal/core"
	"safetynet/internal/msg"
	"safetynet/internal/network"
	"safetynet/internal/sim"
)

// CacheStats aggregates cache-controller activity.
type CacheStats struct {
	Loads, Stores  uint64
	L1Hits, L2Hits uint64
	Misses         uint64
	Upgrades       uint64
	// StoresLogged counts store overwrites that appended a CLB entry
	// (Figure 6: "stores that use CLB").
	StoresLogged uint64
	// TransfersLogged counts ownership transfers (forwarded requests and
	// writebacks) that appended a CLB entry.
	TransfersLogged uint64
	// RequestsIssued counts GETS/GETX/PUTX injections, including retries
	// (Figure 6: "all coherence requests").
	RequestsIssued uint64
	Writebacks     uint64
	NacksReceived  uint64
	Retries        uint64
	Timeouts       uint64
	// CLBStallCycles is time spent throttled behind a full CLB (the
	// back-pressure that degrades undersized CLBs, Figure 8).
	CLBStallCycles uint64
}

// mshr tracks one outstanding transaction (the processor model is
// blocking, so a node has at most one, plus any writebacks in flight).
type mshr struct {
	addr     uint64
	txn      uint64
	isStore  bool
	storeVal uint64
	startCCN msg.CN

	dataReceived bool
	dataVal      uint64
	dataCN       msg.CN
	acksKnown    bool
	acksNeeded   int
	acksGot      int
	// ackFrom records which nodes already acked this transaction, so a
	// duplicated InvAck (a §5.1 protocol-engine soft fault) is absorbed
	// by transaction matching instead of overshooting the ack count.
	ackFrom  uint64
	lostData bool

	doneLoad  func(uint64)
	doneStore func()

	cancelTimeout sim.Canceler
}

// wbEntry is a writeback buffer slot: the evicted owned block stays
// logically owned by this node until the home accepts the PUTX or a
// forwarded request takes ownership out of the buffer.
type wbEntry struct {
	addr          uint64
	data          uint64
	cn            msg.CN // transfer CN assigned at eviction
	state         cache.State
	hasOwnership  bool
	txn           uint64
	startCCN      msg.CN
	cancelTimeout sim.Canceler
	onResolve     []func()
}

// CacheController is one node's cache hierarchy plus its protocol engine
// and (under SafetyNet) its cache-side Checkpoint Log Buffer.
type CacheController struct {
	node int
	eng  *sim.Engine
	nw   *network.Network
	p    config.Params
	home HomeFunc
	sn   bool

	l1, l2 *cache.Array
	clb    *core.CLB
	bw     cache.Bandwidth

	ccn    msg.CN
	txnSeq uint64
	// epoch counts recoveries; stall-retry closures from before a
	// recovery must not resume.
	epoch int

	mshrs       map[uint64]*mshr
	wbs         map[uint64]*wbEntry
	outstanding map[msg.CN]int

	// serveFwd*Fn are bound once so deferring a forwarded request does
	// not allocate a closure per message.
	serveFwdGETSFn func(any)
	serveFwdGETXFn func(any)

	stats CacheStats

	// OnFault reports a detected fault (request timeout). The machine
	// reports it to the service controllers (SafetyNet) or crashes
	// (unprotected baseline).
	OnFault func(cause string)
	// OnReadyChange fires when ReadyCkpt may have increased.
	OnReadyChange func()
	// OnMiss, when set, observes every transactional access (debug).
	OnMiss func(addr uint64, isStore bool)
}

// NewCacheController builds the controller with empty caches.
func NewCacheController(node int, eng *sim.Engine, nw *network.Network, p config.Params, home HomeFunc) *CacheController {
	cc := &CacheController{
		node: node, eng: eng, nw: nw, p: p, home: home,
		sn:          p.SafetyNetEnabled,
		l1:          cache.NewArray(p.L1Sets(), p.L1Ways, p.BlockBytes),
		l2:          cache.NewArray(p.L2Sets(), p.L2Ways, p.BlockBytes),
		ccn:         1,
		mshrs:       make(map[uint64]*mshr),
		wbs:         make(map[uint64]*wbEntry),
		outstanding: make(map[msg.CN]int),
	}
	if cc.sn {
		cc.clb = core.NewCLB(p.CLBBytes/2, p.CLBEntryBytes)
	}
	cc.serveFwdGETSFn = cc.serveFwdGETSArg
	cc.serveFwdGETXFn = cc.serveFwdGETXArg
	return cc
}

// CCN returns the component's current checkpoint number.
func (cc *CacheController) CCN() msg.CN { return cc.ccn }

// Stats returns a copy of the statistics.
func (cc *CacheController) Stats() CacheStats { return cc.stats }

// Bandwidth returns the cache-port occupancy breakdown (Figure 7).
func (cc *CacheController) Bandwidth() cache.Bandwidth { return cc.bw }

// CLB exposes the cache-side log (nil when SafetyNet is disabled).
func (cc *CacheController) CLB() *core.CLB { return cc.clb }

// L2 exposes the L2 array for invariant checking.
func (cc *CacheController) L2() *cache.Array { return cc.l2 }

// OutstandingTxns returns the number of in-flight transactions (MSHRs and
// writebacks).
func (cc *CacheController) OutstandingTxns() int { return len(cc.mshrs) + len(cc.wbs) }

// OwnedValue returns the node's copy of addr if this node owns it (in the
// array or the writeback buffer). Meaningful only at quiescence.
func (cc *CacheController) OwnedValue(addr uint64) (uint64, bool) {
	if wb := cc.wbs[addr]; wb != nil && wb.hasOwnership {
		return wb.data, true
	}
	if l := cc.l2.Lookup(addr); l != nil && l.State.IsOwner() {
		return l.Data, true
	}
	return 0, false
}

// LineState reports the stable state and value of addr in the L2.
func (cc *CacheController) LineState(addr uint64) (cache.State, uint64, bool) {
	if l := cc.l2.Lookup(addr); l != nil {
		return l.State, l.Data, true
	}
	return cache.Invalid, 0, false
}

// OnEdge advances the component's checkpoint number at a checkpoint-clock
// edge.
func (cc *CacheController) OnEdge() { cc.ccn++ }

// OnValidate deallocates log state for validated checkpoints.
func (cc *CacheController) OnValidate(rpcn msg.CN) {
	if cc.clb != nil {
		cc.clb.DeallocateThrough(rpcn)
	}
}

// ReadyCkpt returns the highest checkpoint this component agrees to
// validate: its CCN, bounded by the start interval of its oldest
// outstanding transaction (paper §3.5 — a cache controller only agrees to
// validate a checkpoint once every transaction it initiated in an earlier
// interval completed successfully).
func (cc *CacheController) ReadyCkpt() msg.CN {
	r := cc.ccn
	for start, n := range cc.outstanding {
		if n > 0 && start < r {
			r = start
		}
	}
	return r
}

// shouldLog applies the update-action logging rule, or logs
// unconditionally under the dedup ablation.
func (cc *CacheController) shouldLog(blockCN msg.CN, ccn msg.CN) bool {
	if cc.p.DisableLogDedup {
		return true
	}
	return core.ShouldLog(blockCN, ccn)
}

func (cc *CacheController) blockCycles() uint64 {
	return uint64(cc.p.BlockBytes) / 8 // cache port moves 8 bytes/cycle
}

// ---------------------------------------------------------------------
// Processor interface
// ---------------------------------------------------------------------

// Load issues a blocking load; done receives the block's value token.
func (cc *CacheController) Load(addr uint64, done func(uint64)) {
	cc.stats.Loads++
	if wb := cc.wbs[addr]; wb != nil {
		// The block is mid-writeback; replay once the writeback
		// resolves to avoid racing our own PUTX.
		wb.onResolve = append(wb.onResolve, func() { cc.Load(addr, done) })
		return
	}
	if l2 := cc.l2.Lookup(addr); l2 != nil {
		cc.l2.Touch(l2)
		data := l2.Data
		if cc.l1.Lookup(addr) != nil {
			cc.bw.HitCycles += cc.blockCycles()
			cc.stats.L1Hits++
			cc.eng.After(sim.Time(cc.p.L1HitCycles), func() { done(data) })
			return
		}
		cc.stats.L2Hits++
		cc.bw.HitCycles += cc.blockCycles()
		cc.bw.FillCycles += cc.blockCycles() // refill the L1
		cc.fillL1(addr)
		cc.eng.After(sim.Time(cc.p.L2HitCycles), func() { done(data) })
		return
	}
	cc.stats.Misses++
	if cc.OnMiss != nil {
		cc.OnMiss(addr, false)
	}
	cc.startTxn(addr, false, 0, done, nil)
}

// Store issues a blocking store of the value token val.
func (cc *CacheController) Store(addr uint64, val uint64, done func()) {
	cc.stats.Stores++
	cc.storeInner(addr, val, done)
}

// storeInner dispatches a store without re-counting statistics (used by
// CLB-stall retries, which must re-evaluate the block's state because a
// forwarded request may have taken it away during the stall).
func (cc *CacheController) storeInner(addr uint64, val uint64, done func()) {
	if wb := cc.wbs[addr]; wb != nil {
		wb.onResolve = append(wb.onResolve, func() { cc.storeInner(addr, val, done) })
		return
	}
	l2 := cc.l2.Lookup(addr)
	if l2 != nil && l2.State == cache.Modified {
		cc.l2.Touch(l2)
		cc.storeHit(l2, val, done)
		return
	}
	if l2 != nil {
		// S or O: upgrade.
		cc.stats.Upgrades++
		if cc.OnMiss != nil {
			cc.OnMiss(addr, true)
		}
		cc.startTxn(addr, true, val, nil, done)
		return
	}
	cc.stats.Misses++
	if cc.OnMiss != nil {
		cc.OnMiss(addr, true)
	}
	cc.startTxn(addr, true, val, nil, done)
}

// FastAccess attempts a reference without engine involvement: cache hits
// (including stores to Modified blocks with inline logging) return their
// latency immediately so the processor can batch hit runs into a single
// event. It returns ok=false when the access needs the transactional slow
// path (miss, upgrade, writeback race, or CLB back-pressure).
func (cc *CacheController) FastAccess(addr uint64, isStore bool, val uint64) (sim.Time, bool) {
	if cc.wbs[addr] != nil {
		return 0, false
	}
	l2 := cc.l2.Lookup(addr)
	if l2 == nil {
		return 0, false
	}
	if !isStore {
		cc.stats.Loads++
		cc.l2.Touch(l2)
		if cc.l1.Lookup(addr) != nil {
			cc.stats.L1Hits++
			cc.bw.HitCycles += cc.blockCycles()
			return sim.Time(cc.p.L1HitCycles), true
		}
		cc.stats.L2Hits++
		cc.bw.HitCycles += cc.blockCycles()
		cc.bw.FillCycles += cc.blockCycles()
		cc.fillL1(addr)
		return sim.Time(cc.p.L2HitCycles), true
	}
	if l2.State != cache.Modified {
		return 0, false
	}
	lat := sim.Time(cc.p.L1HitCycles)
	if cc.sn && cc.shouldLog(l2.CN, cc.ccn) {
		if cc.clb.Full() {
			return 0, false // slow path throttles
		}
		cc.clb.Append(core.Entry{
			Addr: l2.Addr, Tag: core.UpdatedCN(cc.ccn),
			OldData: l2.Data, OldCN: l2.CN, OldState: l2.State,
		})
		cc.stats.StoresLogged++
		cc.bw.LoggingCycles += cc.p.LogStoreCycles
		lat += sim.Time(cc.p.LogStoreCycles)
	}
	cc.stats.Stores++
	cc.l2.Touch(l2)
	if cc.sn {
		l2.CN = core.UpdatedCN(cc.ccn)
	}
	l2.Data = val
	cc.bw.HitCycles += cc.blockCycles()
	cc.fillL1(addr)
	return lat, true
}

// storeHit performs a store to a Modified block, logging the old copy
// first when the update-action rule requires it. A full CLB throttles the
// store (paper §3.3: "we can throttle requests from the CPU").
func (cc *CacheController) storeHit(l2 *cache.Line, val uint64, done func()) {
	lat := sim.Time(cc.p.L1HitCycles)
	if cc.sn && cc.shouldLog(l2.CN, cc.ccn) {
		if cc.clb.Full() {
			addr := l2.Addr
			ep := cc.epoch
			cc.stats.CLBStallCycles += clbRetryCycles
			cc.eng.After(clbRetryCycles, func() {
				if cc.epoch == ep { // abandoned if a recovery intervened
					cc.storeInner(addr, val, done)
				}
			})
			return
		}
		cc.clb.Append(core.Entry{
			Addr: l2.Addr, Tag: core.UpdatedCN(cc.ccn),
			OldData: l2.Data, OldCN: l2.CN, OldState: l2.State,
		})
		cc.stats.StoresLogged++
		cc.bw.LoggingCycles += cc.p.LogStoreCycles
		lat += sim.Time(cc.p.LogStoreCycles)
	}
	if cc.sn {
		l2.CN = core.UpdatedCN(cc.ccn)
	}
	l2.Data = val
	cc.bw.HitCycles += cc.blockCycles()
	cc.fillL1(l2.Addr)
	cc.eng.After(lat, done)
}

const clbRetryCycles = 100

func (cc *CacheController) fillL1(addr uint64) {
	if l1 := cc.l1.Lookup(addr); l1 != nil {
		cc.l1.Touch(l1)
		return
	}
	v := cc.l1.Victim(addr, nil)
	cc.l1.Install(v, addr, cache.Shared, msg.Null, 0) // L1 is a presence filter
}

// ---------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------

func (cc *CacheController) startTxn(addr uint64, isStore bool, val uint64, doneLoad func(uint64), doneStore func()) {
	if _, busy := cc.mshrs[addr]; busy {
		panic(fmt.Sprintf("protocol: node %d double transaction on %#x (blocking processor)", cc.node, addr))
	}
	cc.txnSeq++
	m := &mshr{
		addr: addr, txn: cc.txnID(), isStore: isStore, storeVal: val,
		startCCN: cc.ccn, doneLoad: doneLoad, doneStore: doneStore,
	}
	cc.mshrs[addr] = m
	cc.outstanding[m.startCCN]++
	cc.sendRequest(m)
}

func (cc *CacheController) txnID() uint64 {
	return uint64(cc.node)<<48 | cc.txnSeq
}

func (cc *CacheController) sendRequest(m *mshr) {
	t := msg.GETS
	haveData := false
	if m.isStore {
		t = msg.GETX
		// Report whether we still hold a valid copy so the directory can
		// grant a data-less upgrade. Re-evaluated on every retry: an
		// invalidation may have landed in between.
		if l := cc.l2.Lookup(m.addr); l != nil && l.State != cache.Invalid {
			haveData = true
		}
	}
	cc.stats.RequestsIssued++
	req := msg.Alloc()
	*req = msg.Message{
		Type: t, Src: cc.node, Dst: cc.home(m.addr), Addr: m.addr,
		Txn: m.txn, HaveData: haveData,
	}
	cc.nw.Send(req)
	cc.armMSHRTimeout(m)
}

func (cc *CacheController) armMSHRTimeout(m *mshr) {
	m.cancelTimeout.Cancel()
	m.cancelTimeout = cc.eng.ScheduleCancelable(cc.eng.Now()+sim.Time(cc.p.RequestTimeoutCycles), func() {
		cc.stats.Timeouts++
		if cc.OnFault != nil {
			cc.OnFault(fmt.Sprintf("node %d: request timeout addr %#x", cc.node, m.addr))
		}
	})
}

func (cc *CacheController) completeTxn(m *mshr) {
	m.cancelTimeout.Cancel()
	delete(cc.mshrs, m.addr)
	cc.outstanding[m.startCCN]--
	if cc.outstanding[m.startCCN] == 0 {
		delete(cc.outstanding, m.startCCN)
	}
	if cc.OnReadyChange != nil {
		cc.OnReadyChange()
	}
}

// retryBackoffCycles spaces nack retries to let the directory drain.
func (cc *CacheController) retryBackoff() sim.Time {
	return sim.Time(300 + (cc.txnSeq*37)%256)
}

// ---------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------

// Handle processes a message delivered to this node's cache controller.
// It owns m: synchronous cases release it here, while the Data and
// forwarded-request paths keep it alive across their deferred processing
// and release it on their terminal paths.
func (cc *CacheController) Handle(m *msg.Message) {
	if m.Corrupted {
		// The end-point error-detecting code catches the damage; the
		// payload is discarded and the fault reported (paper Table 1:
		// "detected using an error detection code (e.g., CRC)").
		if cc.OnFault != nil {
			cc.OnFault(fmt.Sprintf("node %d: corrupt %v detected by CRC", cc.node, m.Type))
		}
		msg.Release(m)
		return
	}
	switch m.Type {
	case msg.Data:
		cc.onData(m) // releases m on its terminal paths
		return
	case msg.FwdGETS:
		cc.onFwdGETS(m) // releases m when the deferred serve completes
		return
	case msg.FwdGETX:
		cc.onFwdGETX(m) // releases m when the deferred serve completes
		return
	case msg.DataEx:
		cc.onDataEx(m)
	case msg.AckCount:
		cc.onAckCount(m)
	case msg.InvAck:
		cc.onInvAck(m)
	case msg.Inv:
		cc.onInv(m)
	case msg.NackReq:
		cc.onNack(m)
	case msg.WBAck, msg.WBStale:
		cc.onWBResponse(m)
	default:
		panic(fmt.Sprintf("protocol: cache controller got %v", m))
	}
	msg.Release(m)
}

func (cc *CacheController) onData(m *msg.Message) {
	mm := cc.mshrs[m.Addr]
	if mm == nil || mm.txn != m.Txn || mm.isStore {
		msg.Release(m)
		return // stale response from a superseded attempt
	}
	if _, ok := cc.installL2(m.Addr, cache.Shared, m.CN, m.Data); !ok {
		// Every candidate victim needs a log entry and the CLB is full;
		// throttle until validation frees space (paper §3.3). m stays
		// alive across the retry.
		cc.stats.CLBStallCycles += clbRetryCycles
		cc.eng.After(clbRetryCycles, func() { cc.onData(m) })
		return
	}
	if m.NeedsAck {
		ack := msg.Alloc()
		*ack = msg.Message{Type: msg.AckDone, Src: cc.node, Dst: cc.home(m.Addr), Addr: m.Addr, CN: m.CN, Txn: m.Txn}
		cc.nw.Send(ack)
	}
	done := mm.doneLoad
	data := m.Data
	msg.Release(m)
	cc.completeTxn(mm)
	done(data)
}

func (cc *CacheController) onDataEx(m *msg.Message) {
	mm := cc.mshrs[m.Addr]
	if mm == nil || mm.txn != m.Txn || !mm.isStore {
		return
	}
	mm.dataReceived = true
	mm.dataVal = m.Data
	mm.dataCN = m.CN
	mm.acksKnown = true
	mm.acksNeeded = m.AckCount
	cc.tryCompleteGETX(mm)
}

func (cc *CacheController) onAckCount(m *msg.Message) {
	mm := cc.mshrs[m.Addr]
	if mm == nil || mm.txn != m.Txn || !mm.isStore {
		return
	}
	if mm.lostData {
		// The directory granted an upgrade, so it saw us as a sharer; an
		// Inv that cleared our copy can only come from a transaction
		// serialized before ours, which would have cleared the sharer
		// bit. Both cannot hold.
		panic(fmt.Sprintf("protocol: node %d upgrade grant after losing data on %#x", cc.node, m.Addr))
	}
	l2 := cc.l2.Lookup(m.Addr)
	if l2 == nil {
		panic(fmt.Sprintf("protocol: node %d AckCount without a copy of %#x", cc.node, m.Addr))
	}
	mm.dataReceived = true
	mm.dataVal = l2.Data
	mm.dataCN = m.CN
	mm.acksKnown = true
	mm.acksNeeded = m.AckCount
	cc.tryCompleteGETX(mm)
}

func (cc *CacheController) onInvAck(m *msg.Message) {
	mm := cc.mshrs[m.Addr]
	if mm == nil || mm.txn != m.Txn {
		return
	}
	bit := uint64(1) << uint(m.Src)
	if mm.ackFrom&bit != 0 {
		return // duplicate delivery of an ack this transaction already has
	}
	mm.ackFrom |= bit
	mm.acksGot++
	cc.tryCompleteGETX(mm)
}

// tryCompleteGETX finishes a GETX once data and every invalidation ack
// arrived: install Modified with the transfer CN, apply the store under
// the logging rule, and close the transaction with the final
// acknowledgment to the directory.
func (cc *CacheController) tryCompleteGETX(mm *mshr) {
	if cc.mshrs[mm.addr] != mm {
		return // a recovery discarded this transaction during a CLB stall
	}
	if !mm.dataReceived || !mm.acksKnown || mm.acksGot < mm.acksNeeded {
		return
	}
	if mm.acksGot > mm.acksNeeded {
		panic("protocol: excess invalidation acks")
	}
	// An O -> M upgrade gives up the Owned incarnation of the block: the
	// dirty O data lives only here (memory is stale), so the transition
	// is an ownership-transfer update-action and must be logged with the
	// transaction's CN. A recovery past that CN then restores the O line
	// (and the directory unroll restores the old owner/sharers).
	if existing := cc.l2.Lookup(mm.addr); existing != nil && existing.State.IsOwner() &&
		cc.sn && cc.shouldLog(existing.CN, cc.ccn) {
		if cc.clb.Full() {
			cc.stats.CLBStallCycles += clbRetryCycles
			cc.eng.After(clbRetryCycles, func() { cc.tryCompleteGETX(mm) })
			return
		}
		cc.clb.Append(core.Entry{
			Addr: mm.addr, Tag: mm.dataCN,
			OldData: existing.Data, OldCN: existing.CN, OldState: existing.State,
			Transfer: true,
		})
		cc.stats.TransfersLogged++
	}
	// Ownership arrives first: the line becomes Modified tagged with the
	// transaction's point-of-atomicity CN...
	l2, ok := cc.installL2(mm.addr, cache.Modified, mm.dataCN, mm.dataVal)
	if !ok {
		cc.stats.CLBStallCycles += clbRetryCycles
		cc.eng.After(clbRetryCycles, func() { cc.tryCompleteGETX(mm) })
		return
	}
	// ...then the store applies as a separate update-action. Logging the
	// post-transfer state (Modified, transfer CN) keeps recovery exact:
	// rolling back past the store but not the transfer restores Modified
	// with the pre-store data; rolling back past the transfer CN
	// invalidates the line and the directory unroll restores the old
	// owner.
	if cc.sn && cc.shouldLog(l2.CN, cc.ccn) {
		if cc.clb.Full() {
			cc.stats.CLBStallCycles += clbRetryCycles
			cc.eng.After(clbRetryCycles, func() { cc.tryCompleteGETX(mm) })
			return
		}
		cc.clb.Append(core.Entry{
			Addr: l2.Addr, Tag: core.UpdatedCN(cc.ccn),
			OldData: l2.Data, OldCN: l2.CN, OldState: l2.State,
		})
		cc.stats.StoresLogged++
		cc.bw.LoggingCycles += cc.p.LogStoreCycles
	}
	if cc.sn {
		l2.CN = core.UpdatedCN(cc.ccn)
	}
	l2.Data = mm.storeVal
	cc.fillL1(mm.addr)
	ack := msg.Alloc()
	*ack = msg.Message{Type: msg.AckDone, Src: cc.node, Dst: cc.home(mm.addr), Addr: mm.addr, CN: mm.dataCN, Txn: mm.txn}
	cc.nw.Send(ack)
	done := mm.doneStore
	cc.completeTxn(mm)
	cc.eng.After(sim.Time(cc.p.L1HitCycles), done)
}

func (cc *CacheController) onInv(m *msg.Message) {
	if mm := cc.mshrs[m.Addr]; mm != nil && mm.isStore {
		// Our upgrade lost the race; we will be served data instead.
		mm.lostData = true
	}
	cc.l2.Invalidate(m.Addr)
	cc.l1.Invalidate(m.Addr)
	ack := msg.Alloc()
	*ack = msg.Message{Type: msg.InvAck, Src: cc.node, Dst: m.Requestor, Addr: m.Addr, Txn: m.Txn}
	cc.nw.Send(ack)
}

func (cc *CacheController) onFwdGETS(m *msg.Message) {
	cc.eng.AfterArg(sim.Time(cc.p.L2HitCycles), cc.serveFwdGETSFn, m)
}

func (cc *CacheController) serveFwdGETSArg(a any) { cc.serveFwdGETS(a.(*msg.Message)) }

func (cc *CacheController) serveFwdGETS(m *msg.Message) {
	defer msg.Release(m)
	if m.Epoch != cc.nw.Epoch() {
		return // a recovery landed while the request sat in the controller
	}
	var data uint64
	if wb := cc.wbs[m.Addr]; wb != nil && wb.hasOwnership {
		data = wb.data
		// The buffer keeps ownership: a GETS takes only a shared copy.
	} else if l2 := cc.l2.Lookup(m.Addr); l2 != nil && l2.State.IsOwner() {
		if l2.State == cache.Modified {
			l2.State = cache.Owned
		}
		data = l2.Data
	} else {
		// An illegal message: a forwarded request for a block this node
		// does not own (a duplicated or misrouted message, or a corrupt
		// directory). End-points detect illegal messages and report the
		// fault (paper Table 1).
		if cc.OnFault != nil {
			cc.OnFault(fmt.Sprintf("node %d: illegal FwdGETS for %#x (not owner)", cc.node, m.Addr))
		}
		return
	}
	cc.bw.CoherenceCycles += cc.blockCycles()
	cn := msg.Null
	if cc.sn {
		cn = core.UpdatedCN(cc.ccn)
	}
	resp := msg.Alloc()
	*resp = msg.Message{
		Type: msg.Data, Src: cc.node, Dst: m.Requestor, Addr: m.Addr,
		Data: data, CN: cn, NeedsAck: true, Txn: m.Txn,
	}
	cc.nw.Send(resp)
}

func (cc *CacheController) onFwdGETX(m *msg.Message) {
	cc.eng.AfterArg(sim.Time(cc.p.L2HitCycles), cc.serveFwdGETXFn, m)
}

func (cc *CacheController) serveFwdGETXArg(a any) { cc.serveFwdGETX(a.(*msg.Message)) }

// serveFwdGETX transfers ownership out of the cache (or the writeback
// buffer): log the block under the update-action rule, invalidate the
// local copy, and send data with the new CN (paper §3.3: "when giving up
// ownership of a block, a component performs logging and then sends a
// response with the block and the updated CN").
func (cc *CacheController) serveFwdGETX(m *msg.Message) {
	if m.Epoch != cc.nw.Epoch() {
		msg.Release(m)
		return // a recovery landed while the request sat in the controller
	}
	var data uint64
	var oldCN msg.CN
	var oldState cache.State
	if wb := cc.wbs[m.Addr]; wb != nil && wb.hasOwnership {
		data, oldCN, oldState = wb.data, wb.cn, wb.state
	} else if l2 := cc.l2.Lookup(m.Addr); l2 != nil && l2.State.IsOwner() {
		data, oldCN, oldState = l2.Data, l2.CN, l2.State
	} else {
		// Illegal message (duplicated/misrouted forward): detected at
		// the end-point, reported, discarded (paper Table 1).
		if cc.OnFault != nil {
			cc.OnFault(fmt.Sprintf("node %d: illegal FwdGETX for %#x (not owner)", cc.node, m.Addr))
		}
		msg.Release(m)
		return
	}
	if cc.sn && cc.shouldLog(oldCN, cc.ccn) {
		if cc.clb.Full() {
			// Hold the response until validation frees space; the
			// requestor's transaction simply takes longer. Recovery via
			// the requestor's timeout is the backstop if validation
			// cannot advance (paper §3.3). m stays alive for the retry.
			cc.stats.CLBStallCycles += clbRetryCycles
			cc.eng.After(clbRetryCycles, func() { cc.serveFwdGETX(m) })
			return
		}
		cc.clb.Append(core.Entry{
			Addr: m.Addr, Tag: core.UpdatedCN(cc.ccn),
			OldData: data, OldCN: oldCN, OldState: oldState,
			Transfer: true,
		})
		cc.stats.TransfersLogged++
	}
	if wb := cc.wbs[m.Addr]; wb != nil && wb.hasOwnership {
		wb.hasOwnership = false
	} else {
		cc.l2.Invalidate(m.Addr)
		cc.l1.Invalidate(m.Addr)
	}
	cc.bw.CoherenceCycles += cc.blockCycles()
	cn := msg.Null
	if cc.sn {
		cn = core.UpdatedCN(cc.ccn)
	}
	resp := msg.Alloc()
	*resp = msg.Message{
		Type: msg.DataEx, Src: cc.node, Dst: m.Requestor, Addr: m.Addr,
		Data: data, CN: cn, AckCount: m.AckCount, Txn: m.Txn,
	}
	cc.nw.Send(resp)
	msg.Release(m)
}

func (cc *CacheController) onNack(m *msg.Message) {
	cc.stats.NacksReceived++
	addr := m.Addr // the closures below must not outlive m
	if mm := cc.mshrs[m.Addr]; mm != nil && mm.txn == m.Txn {
		cc.stats.Retries++
		cc.eng.After(cc.retryBackoff(), func() {
			if cc.mshrs[addr] == mm { // still pending (not recovered away)
				cc.sendRequest(mm)
			}
		})
		return
	}
	if wb := cc.wbs[m.Addr]; wb != nil && wb.txn == m.Txn {
		if !wb.hasOwnership {
			// Ownership already left through a forwarded request; the
			// writeback is moot.
			cc.resolveWB(wb)
			return
		}
		cc.stats.Retries++
		cc.eng.After(cc.retryBackoff(), func() {
			if cc.wbs[addr] == wb {
				cc.sendPUTX(wb)
			}
		})
	}
}

func (cc *CacheController) onWBResponse(m *msg.Message) {
	wb := cc.wbs[m.Addr]
	if wb == nil || wb.txn != m.Txn {
		return
	}
	cc.resolveWB(wb)
}

func (cc *CacheController) resolveWB(wb *wbEntry) {
	wb.cancelTimeout.Cancel()
	delete(cc.wbs, wb.addr)
	cc.outstanding[wb.startCCN]--
	if cc.outstanding[wb.startCCN] == 0 {
		delete(cc.outstanding, wb.startCCN)
	}
	if cc.OnReadyChange != nil {
		cc.OnReadyChange()
	}
	for _, f := range wb.onResolve {
		f()
	}
}

// ---------------------------------------------------------------------
// Fills, evictions, writebacks
// ---------------------------------------------------------------------

// installL2 places a block into the L2, evicting as needed. It returns
// (line, true) on success, or (nil, false) when the only eviction
// candidates are owned blocks whose transfer must be logged while the CLB
// is full — the caller must throttle and retry.
func (cc *CacheController) installL2(addr uint64, st cache.State, cn msg.CN, data uint64) (*cache.Line, bool) {
	if l2 := cc.l2.Lookup(addr); l2 != nil {
		// Upgrade path: the block is already resident.
		l2.State = st
		l2.CN = cn
		// Data unchanged: an upgrade grants permission, not data.
		cc.l2.Touch(l2)
		return l2, true
	}
	evictable := func(l *cache.Line) bool {
		return cc.mshrs[l.Addr] == nil && cc.wbs[l.Addr] == nil
	}
	v := cc.l2.Victim(addr, evictable)
	if v == nil {
		// Cannot happen with a blocking processor (at most one MSHR and
		// its upgrades pin one line per set).
		panic(fmt.Sprintf("protocol: node %d has no evictable frame for %#x", cc.node, addr))
	}
	if v.State.IsOwner() && cc.sn && cc.shouldLog(v.CN, cc.ccn) && cc.clb.Full() {
		// Evicting this block requires logging the ownership transfer;
		// prefer a victim that does not.
		alt := cc.l2.Victim(addr, func(l *cache.Line) bool {
			return evictable(l) && !(l.State.IsOwner() && cc.shouldLog(l.CN, cc.ccn))
		})
		if alt == nil {
			return nil, false
		}
		v = alt
	}
	if v.State.IsOwner() {
		cc.startWriteback(v)
	}
	cc.l2.Install(v, addr, st, cn, data)
	cc.bw.FillCycles += cc.blockCycles()
	cc.fillL1(addr)
	return cc.l2.Lookup(addr), true
}

// startWriteback moves an evicted owned block into the writeback buffer
// and sends the PUTX. Giving up ownership is an update-action: log it.
func (cc *CacheController) startWriteback(v *cache.Line) {
	cn := msg.Null
	if cc.sn {
		if cc.shouldLog(v.CN, cc.ccn) {
			// installL2 guarantees CLB space before choosing a victim
			// that requires a transfer log.
			cc.clb.Append(core.Entry{
				Addr: v.Addr, Tag: core.UpdatedCN(cc.ccn),
				OldData: v.Data, OldCN: v.CN, OldState: v.State,
				Transfer: true,
			})
			cc.stats.TransfersLogged++
		}
		cn = core.UpdatedCN(cc.ccn)
	}
	cc.txnSeq++
	wb := &wbEntry{
		addr: v.Addr, data: v.Data, cn: cn, state: v.State,
		hasOwnership: true, txn: cc.txnID(), startCCN: cc.ccn,
	}
	cc.wbs[v.Addr] = wb
	cc.outstanding[wb.startCCN]++
	cc.stats.Writebacks++
	cc.bw.CoherenceCycles += cc.blockCycles()
	cc.sendPUTX(wb)
}

func (cc *CacheController) sendPUTX(wb *wbEntry) {
	cc.stats.RequestsIssued++
	req := msg.Alloc()
	*req = msg.Message{
		Type: msg.PUTX, Src: cc.node, Dst: cc.home(wb.addr), Addr: wb.addr,
		Data: wb.data, CN: wb.cn, Txn: wb.txn,
	}
	cc.nw.Send(req)
	wb.cancelTimeout.Cancel()
	wb.cancelTimeout = cc.eng.ScheduleCancelable(cc.eng.Now()+sim.Time(cc.p.RequestTimeoutCycles), func() {
		cc.stats.Timeouts++
		if cc.OnFault != nil {
			cc.OnFault(fmt.Sprintf("node %d: writeback timeout addr %#x", cc.node, wb.addr))
		}
	})
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

// Recover rolls this cache back to checkpoint rpcn (paper §3.6): discard
// all transaction state, unroll the CLB in reverse (restoring old data,
// CN, and state; allocating frames for blocks that were evicted after the
// recovery point), and invalidate every block still tagged with an
// unvalidated CN — those were clean fills in unvalidated intervals.
// flushToMem absorbs validated dirty victims displaced by restores. It
// returns the number of log entries unrolled (recovery-cost accounting).
func (cc *CacheController) Recover(rpcn msg.CN, flushToMem func(addr, data uint64)) int {
	for _, m := range cc.mshrs {
		m.cancelTimeout.Cancel()
	}
	for _, wb := range cc.wbs {
		wb.cancelTimeout.Cancel()
	}
	cc.mshrs = make(map[uint64]*mshr)
	cc.wbs = make(map[uint64]*wbEntry)
	cc.outstanding = make(map[msg.CN]int)
	cc.epoch++

	n := 0
	if cc.clb != nil {
		n = cc.clb.Unroll(func(e core.Entry) { cc.undo(e, rpcn, flushToMem) })
	}
	cc.l2.ForEachValid(func(l *cache.Line) {
		if l.CN > rpcn {
			l.State = cache.Invalid
		}
	})
	cc.l1.InvalidateAll()
	cc.ccn = rpcn
	return n
}

func (cc *CacheController) undo(e core.Entry, rpcn msg.CN, flushToMem func(addr, data uint64)) {
	if l := cc.l2.Lookup(e.Addr); l != nil {
		l.Data = e.OldData
		l.CN = e.OldCN
		l.State = e.OldState
		return
	}
	// The block was evicted after this update-action; restore it into a
	// frame. Preference: invalid, then non-owners (silent drop), then
	// owners with unvalidated CNs (their contents are being discarded by
	// this recovery anyway), then validated owners (flush to memory).
	v := cc.l2.Victim(e.Addr, func(l *cache.Line) bool { return !l.State.IsOwner() })
	if v == nil {
		v = cc.l2.Victim(e.Addr, func(l *cache.Line) bool { return l.State.IsOwner() && l.CN > rpcn })
	}
	if v == nil {
		v = cc.l2.Victim(e.Addr, nil)
		if v.State.IsOwner() && v.CN <= rpcn {
			flushToMem(v.Addr, v.Data)
		}
	}
	cc.l2.Install(v, e.Addr, e.OldState, e.OldCN, e.OldData)
}
