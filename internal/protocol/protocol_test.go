package protocol

import (
	"testing"

	"safetynet/internal/cache"
	"safetynet/internal/config"
	"safetynet/internal/core"
	"safetynet/internal/msg"
	"safetynet/internal/network"
	"safetynet/internal/sim"
	"safetynet/internal/topology"
)

// rig is a minimal 4-node protocol testbench: cache and directory
// controllers wired to a real network, with the checkpoint clock and
// service controllers replaced by manual calls.
type rig struct {
	t    *testing.T
	eng  *sim.Engine
	nw   *network.Network
	p    config.Params
	ccs  []*CacheController
	dirs []*DirController
	home HomeFunc
}

func newRig(t *testing.T, mut func(*config.Params)) *rig {
	t.Helper()
	p := config.Default()
	p.NumNodes = 4
	p.TorusWidth, p.TorusHeight = 2, 2
	p.L1Bytes = 4 << 10
	p.L2Bytes = 16 << 10
	if mut != nil {
		mut(&p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	r := &rig{t: t, eng: sim.NewEngine(), p: p}
	r.nw = network.New(r.eng, topology.New(2, 2), p)
	r.home = InterleavedHome(p.BlockBytes, p.NumNodes)
	for n := 0; n < 4; n++ {
		cc := NewCacheController(n, r.eng, r.nw, p, r.home)
		dir := NewDirController(n, r.eng, r.nw, p)
		r.ccs = append(r.ccs, cc)
		r.dirs = append(r.dirs, dir)
	}
	for n := 0; n < 4; n++ {
		n := n
		r.nw.Attach(n, func(m *msg.Message) {
			switch m.Type {
			case msg.GETS, msg.GETX, msg.PUTX, msg.AckDone:
				r.dirs[n].Handle(m)
			default:
				r.ccs[n].Handle(m)
			}
		})
	}
	return r
}

// run advances until fn reports done or the budget expires.
func (r *rig) run(budget sim.Time, done func() bool) {
	r.t.Helper()
	deadline := r.eng.Now() + budget
	for r.eng.Now() < deadline && !done() {
		r.eng.Run(r.eng.Now() + 100)
	}
	if !done() {
		r.t.Fatal("operation did not complete in budget")
	}
}

func (r *rig) load(node int, addr uint64) uint64 {
	r.t.Helper()
	var got uint64
	ok := false
	r.ccs[node].Load(addr, func(v uint64) { got = v; ok = true })
	r.run(1<<20, func() bool { return ok })
	return got
}

func (r *rig) store(node int, addr, val uint64) {
	r.t.Helper()
	ok := false
	r.ccs[node].Store(addr, val, func() { ok = true })
	r.run(1<<20, func() bool { return ok })
}

// drain waits for every in-flight transaction (including final acks and
// writebacks) to resolve so directory state is stable.
func (r *rig) drain() {
	r.t.Helper()
	r.run(1<<21, func() bool {
		for i := range r.ccs {
			if r.ccs[i].OutstandingTxns() != 0 || r.dirs[i].BusyEntries() != 0 {
				return false
			}
		}
		return true
	})
}

// edge ticks every component's checkpoint clock once.
func (r *rig) edge() {
	for i := range r.ccs {
		r.ccs[i].OnEdge()
		r.dirs[i].OnEdge()
	}
}

// addrHomedAt returns a block address whose home is the given node.
func (r *rig) addrHomedAt(node int, i int) uint64 {
	return uint64(node)*64 + uint64(i)*64*uint64(r.p.NumNodes)
}

func TestLoadMissTwoHop(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(1, 0)
	got := r.load(0, addr)
	if want := InitialData(addr); got != want {
		t.Fatalf("load = %#x, want initial data %#x", got, want)
	}
	owner, sharers := r.dirs[1].Entry(addr)
	if owner != MemOwner || sharers&1 == 0 {
		t.Fatalf("dir after GETS: owner=%d sharers=%b", owner, sharers)
	}
	st, _, ok := r.ccs[0].LineState(addr)
	if !ok || st != cache.Shared {
		t.Fatalf("requestor line = %v (ok=%v), want S", st, ok)
	}
}

func TestStoreMissGETX(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(2, 0)
	r.store(0, addr, 42)
	r.drain()
	owner, _ := r.dirs[2].Entry(addr)
	if owner != 0 {
		t.Fatalf("dir owner = %d, want 0", owner)
	}
	st, val, _ := r.ccs[0].LineState(addr)
	if st != cache.Modified || val != 42 {
		t.Fatalf("line = %v/%d, want M/42", st, val)
	}
	if got := r.load(0, addr); got != 42 {
		t.Fatalf("reload = %d, want 42", got)
	}
}

func TestThreeHopGETSMakesOwnerOwned(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(3, 0)
	r.store(0, addr, 7)
	if got := r.load(1, addr); got != 7 {
		t.Fatalf("3-hop load = %d, want 7", got)
	}
	st, _, _ := r.ccs[0].LineState(addr)
	if st != cache.Owned {
		t.Fatalf("previous owner state = %v, want O (MOSI keeps dirty data at owner)", st)
	}
	r.drain()
	owner, sharers := r.dirs[3].Entry(addr)
	if owner != 0 || sharers&(1<<1) == 0 {
		t.Fatalf("dir: owner=%d sharers=%b, want owner 0 with node 1 sharing", owner, sharers)
	}
}

func TestThreeHopGETXTransfersOwnershipAndInvalidates(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(3, 0)
	r.store(0, addr, 7)
	r.load(1, addr) // node 1 becomes a sharer
	r.store(2, addr, 8)
	r.drain()
	owner, sharers := r.dirs[3].Entry(addr)
	if owner != 2 || sharers != 0 {
		t.Fatalf("dir: owner=%d sharers=%b, want 2 with no sharers", owner, sharers)
	}
	if st, _, ok := r.ccs[0].LineState(addr); ok && st != cache.Invalid {
		t.Fatalf("old owner still %v", st)
	}
	if st, _, ok := r.ccs[1].LineState(addr); ok && st != cache.Invalid {
		t.Fatalf("old sharer still %v", st)
	}
	if got := r.load(2, addr); got != 8 {
		t.Fatalf("owner readback = %d", got)
	}
}

func TestUpgradeSharedToModified(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(1, 1)
	r.load(0, addr) // S copy
	misses := r.ccs[0].Stats().Misses
	r.store(0, addr, 9)
	if got := r.ccs[0].Stats().Upgrades; got != 1 {
		t.Fatalf("Upgrades = %d, want 1", got)
	}
	if got := r.ccs[0].Stats().Misses; got != misses {
		t.Fatal("upgrade must not count as a miss")
	}
	st, val, _ := r.ccs[0].LineState(addr)
	if st != cache.Modified || val != 9 {
		t.Fatalf("line = %v/%d, want M/9", st, val)
	}
}

func TestUpgradeOwnedToModified(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(1, 2)
	r.store(0, addr, 5) // node 0: M
	r.load(2, addr)     // node 0: O, node 2: S
	r.store(0, addr, 6) // O -> M upgrade, invalidating node 2
	st, val, _ := r.ccs[0].LineState(addr)
	if st != cache.Modified || val != 6 {
		t.Fatalf("line = %v/%d, want M/6", st, val)
	}
	if st, _, ok := r.ccs[2].LineState(addr); ok && st != cache.Invalid {
		t.Fatalf("sharer not invalidated: %v", st)
	}
}

func TestStoreToRecentlyEvictedSharedBlock(t *testing.T) {
	// Regression for the stale-sharer upgrade hazard: the directory must
	// not grant a data-less upgrade to a node whose copy is gone.
	r := newRig(t, nil)
	addr := r.addrHomedAt(1, 0)
	r.load(0, addr) // S copy, sharer bit set
	// Silently evict by filling the set (L2: 16KB/4-way/64B = 64 sets;
	// same set every 64*64 bytes... walk conflicting addresses).
	setStride := uint64(64 * 64)
	for i := uint64(1); i <= 4; i++ {
		r.load(0, addr+i*setStride)
	}
	if _, _, ok := r.ccs[0].LineState(addr); ok {
		t.Skip("block survived eviction; set mapping changed")
	}
	r.store(0, addr, 11) // dir still lists node 0 as sharer
	st, val, _ := r.ccs[0].LineState(addr)
	if st != cache.Modified || val != 11 {
		t.Fatalf("line = %v/%d, want M/11", st, val)
	}
}

func TestWritebackToMemory(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(1, 0)
	r.store(0, addr, 13)
	// Evict by filling the set with stores.
	setStride := uint64(64 * 64)
	for i := uint64(1); i <= 4; i++ {
		r.store(0, addr+i*setStride, i)
	}
	// Wait for the writeback to drain.
	r.run(1<<20, func() bool { return r.ccs[0].OutstandingTxns() == 0 })
	if got := r.ccs[0].Stats().Writebacks; got == 0 {
		t.Fatal("no writeback issued")
	}
	owner, _ := r.dirs[1].Entry(addr)
	if owner != MemOwner {
		t.Fatalf("owner = %d after writeback, want memory", owner)
	}
	if got := r.dirs[1].MemData(addr); got != 13 {
		t.Fatalf("memory = %d, want 13", got)
	}
	// The block is re-loadable with the written value.
	if got := r.load(2, addr); got != 13 {
		t.Fatalf("reload = %d, want 13", got)
	}
}

func TestConcurrentGETXSerializedByNacks(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(0, 0)
	done := 0
	r.ccs[1].Store(addr, 100, func() { done++ })
	r.ccs[2].Store(addr, 200, func() { done++ })
	r.run(1<<21, func() bool { return done == 2 })
	r.drain()
	if r.ccs[1].Stats().NacksReceived+r.ccs[2].Stats().NacksReceived == 0 {
		t.Fatal("concurrent GETX should nack one requestor")
	}
	owner, _ := r.dirs[0].Entry(addr)
	val, ok := r.ccs[owner].OwnedValue(addr)
	if !ok || (val != 100 && val != 200) {
		t.Fatalf("final owner %d value %d", owner, val)
	}
}

func TestLoggingOncePerInterval(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(1, 0)
	r.store(0, addr, 1)
	base := r.ccs[0].Stats().StoresLogged
	r.store(0, addr, 2)
	r.store(0, addr, 3)
	if got := r.ccs[0].Stats().StoresLogged; got != base {
		t.Fatalf("repeat stores logged %d times, want 0 (paper §3.3)", got-base)
	}
	r.edge()
	r.store(0, addr, 4)
	if got := r.ccs[0].Stats().StoresLogged; got != base+1 {
		t.Fatalf("first store of new interval logged %d times, want 1", got-base)
	}
}

func TestUnprotectedSkipsLogging(t *testing.T) {
	r := newRig(t, func(p *config.Params) { p.SafetyNetEnabled = false })
	addr := r.addrHomedAt(1, 0)
	r.store(0, addr, 1)
	r.store(2, addr, 2)
	if r.ccs[0].CLB() != nil || r.dirs[1].CLB() != nil {
		t.Fatal("unprotected controllers must not allocate CLBs")
	}
	if got := r.ccs[0].Stats().StoresLogged; got != 0 {
		t.Fatalf("unprotected logged %d stores", got)
	}
}

func TestReadyCkptHeldByOutstandingTransaction(t *testing.T) {
	r := newRig(t, nil)
	// Drop the data response so the transaction stays outstanding.
	r.nw.AddDropRule(func(m *msg.Message) bool { return m.Type == msg.Data })
	addr := r.addrHomedAt(1, 0)
	got := false
	r.ccs[0].Load(addr, func(uint64) { got = true })
	startCCN := r.ccs[0].CCN()
	r.eng.Run(r.eng.Now() + 5_000)
	if got {
		t.Fatal("load completed despite dropped response")
	}
	r.edge()
	r.edge()
	if ready := r.ccs[0].ReadyCkpt(); ready != startCCN {
		t.Fatalf("ReadyCkpt = %d, want held at %d while the transaction is outstanding", ready, startCCN)
	}
	if free := r.ccs[2].ReadyCkpt(); free != r.ccs[2].CCN() {
		t.Fatalf("idle node ReadyCkpt = %d, want its CCN %d", free, r.ccs[2].CCN())
	}
}

func TestRequestTimeoutReportsFault(t *testing.T) {
	r := newRig(t, func(p *config.Params) { p.RequestTimeoutCycles = 5_000 })
	r.nw.AddDropRule(func(m *msg.Message) bool { return m.Type == msg.Data })
	var fault string
	r.ccs[0].OnFault = func(cause string) { fault = cause }
	r.ccs[0].Load(r.addrHomedAt(1, 0), func(uint64) {})
	r.eng.Run(r.eng.Now() + 20_000)
	if fault == "" {
		t.Fatal("dropped response did not time out")
	}
	if r.ccs[0].Stats().Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", r.ccs[0].Stats().Timeouts)
	}
}

func TestNackResetsTimeout(t *testing.T) {
	// A directory that keeps nacking must not cause a timeout (the nack
	// proves liveness); this guards the detection false-positive rate.
	r := newRig(t, func(p *config.Params) { p.RequestTimeoutCycles = 3_000 })
	addr := r.addrHomedAt(1, 0)
	// Hold the entry busy: drop AckDone messages so a GETX never closes.
	r.nw.AddDropRule(func(m *msg.Message) bool { return m.Type == msg.AckDone })
	stored := false
	r.ccs[2].Store(addr, 1, func() { stored = true })
	r.run(1<<20, func() bool { return stored }) // dir now wedged busy
	var fault string
	r.ccs[0].OnFault = func(cause string) { fault = cause }
	r.ccs[0].Load(addr, func(uint64) {})
	r.eng.Run(r.eng.Now() + 10_000)
	_ = fault
	// Node 0 keeps getting nacked (busy entry) — that is not a fault;
	// only genuinely missing responses are.
	if r.ccs[0].Stats().NacksReceived == 0 {
		t.Fatal("expected nacks from the busy entry")
	}
	if r.ccs[0].Stats().Timeouts != 0 {
		t.Fatal("nacked requestor must not time out")
	}
}

func TestDirCLBFullNacksRequests(t *testing.T) {
	r := newRig(t, func(p *config.Params) {
		p.CLBBytes = 72 * 4 // two entries per side
	})
	// Fill node 1's memory-side CLB directly (deterministic setup).
	clb := r.dirs[1].CLB()
	for !clb.Full() {
		clb.Append(core.Entry{Addr: 0xdead, Tag: 2, MemEntry: true})
	}
	nacks := r.dirs[1].Stats().Nacks
	// A GETX needing a log entry must now be nacked; it cannot complete
	// (no validation frees space here), so just count nacks.
	r.ccs[2].Store(r.addrHomedAt(1, 30), 99, func() {})
	r.eng.Run(r.eng.Now() + 10_000)
	if r.dirs[1].Stats().Nacks == nacks {
		t.Fatal("full memory-side CLB must nack coherence requests (paper §3.3)")
	}
}

func TestTransferCNRidesDataResponses(t *testing.T) {
	r := newRig(t, nil)
	addr := r.addrHomedAt(1, 0)
	r.edge() // CCN 2
	r.edge() // CCN 3
	r.store(0, addr, 1)
	st, _, _ := r.ccs[0].LineState(addr)
	if st != cache.Modified {
		t.Fatal("setup failed")
	}
	// The line's CN must be CCN+1 = 4 (paper: an update-action at CCN=3
	// belongs to checkpoint 4).
	found := false
	r.ccs[0].L2().ForEachValid(func(l *cache.Line) {
		if l.Addr == addr {
			found = true
			if l.CN != 4 {
				t.Fatalf("line CN = %d, want 4", l.CN)
			}
		}
	})
	if !found {
		t.Fatal("line missing")
	}
}

func TestInitialDataDeterministic(t *testing.T) {
	if InitialData(0x40) != InitialData(0x40) {
		t.Fatal("InitialData must be a pure function")
	}
	if InitialData(0x40) == InitialData(0x80) {
		t.Fatal("InitialData should differ across blocks")
	}
}

func TestInterleavedHome(t *testing.T) {
	h := InterleavedHome(64, 16)
	if h(0) != 0 || h(64) != 1 || h(64*16) != 0 {
		t.Fatal("home interleaving wrong")
	}
}
