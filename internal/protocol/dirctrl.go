package protocol

import (
	"fmt"

	"safetynet/internal/config"
	"safetynet/internal/core"
	"safetynet/internal/msg"
	"safetynet/internal/network"
	"safetynet/internal/sim"
)

// DirStats aggregates directory/memory-controller activity.
type DirStats struct {
	Requests  uint64
	Nacks     uint64
	Forwards  uint64
	MemReads  uint64
	MemWrites uint64
	// EntriesLogged counts memory-side CLB appends (ownership changes and
	// writeback absorptions).
	EntriesLogged uint64
	// CLBStallCycles counts time AckDone processing waited on a full CLB.
	CLBStallCycles uint64
}

// pending describes the transaction currently holding a directory entry
// busy.
type pending struct {
	typ       msg.Type // GETS or GETX
	requestor int
	txn       uint64
	startCCN  msg.CN
}

// dirEntry is one block's directory state plus its SafetyNet CN (used for
// the first-update-per-interval logging optimization on the memory side).
type dirEntry struct {
	owner   int
	sharers uint32
	cn      msg.CN
	busy    bool
	pend    pending
}

// DirController is one node's directory and memory controller: it owns the
// node's slice of shared memory, serializes coherence transactions per
// block, and (under SafetyNet) logs every memory/directory update-action
// into the memory-side Checkpoint Log Buffer.
type DirController struct {
	node int
	eng  *sim.Engine
	nw   *network.Network
	p    config.Params
	sn   bool

	mem     map[uint64]uint64
	entries map[uint64]*dirEntry
	clb     *core.CLB

	ccn        msg.CN
	busyStarts map[msg.CN]int
	busyUntil  sim.Time
	jitter     *sim.Rand

	// dispatchFn is bound once so Handle's deferred dispatch does not
	// allocate a closure per message.
	dispatchFn func(any)

	stats DirStats

	// OnReadyChange fires when ReadyCkpt may have increased.
	OnReadyChange func()
}

// NewDirController builds the controller with pristine memory (every block
// reads as InitialData).
func NewDirController(node int, eng *sim.Engine, nw *network.Network, p config.Params) *DirController {
	dc := &DirController{
		node: node, eng: eng, nw: nw, p: p,
		sn:         p.SafetyNetEnabled,
		mem:        make(map[uint64]uint64),
		entries:    make(map[uint64]*dirEntry),
		ccn:        1,
		busyStarts: make(map[msg.CN]int),
		jitter:     sim.NewRand(p.Seed ^ uint64(node)<<32 ^ 0xd1ec7),
	}
	if dc.sn {
		dc.clb = core.NewCLB(p.CLBBytes/2, p.CLBEntryBytes)
	}
	dc.dispatchFn = dc.dispatch
	return dc
}

// CCN returns the component's current checkpoint number.
func (dc *DirController) CCN() msg.CN { return dc.ccn }

// Stats returns a copy of the statistics.
func (dc *DirController) Stats() DirStats { return dc.stats }

// CLB exposes the memory-side log (nil when SafetyNet is disabled).
func (dc *DirController) CLB() *core.CLB { return dc.clb }

// OnEdge advances the checkpoint number at a checkpoint-clock edge.
func (dc *DirController) OnEdge() { dc.ccn++ }

// OnValidate deallocates log state for validated checkpoints.
func (dc *DirController) OnValidate(rpcn msg.CN) {
	if dc.clb != nil {
		dc.clb.DeallocateThrough(rpcn)
	}
}

// ReadyCkpt returns the highest checkpoint this directory agrees to
// validate: its CCN bounded by the start interval of its oldest busy
// transaction (paper §3.5 — a directory controller only agrees to validate
// after every transaction it forwarded completed, signalled by the
// requestor's final acknowledgment).
func (dc *DirController) ReadyCkpt() msg.CN {
	r := dc.ccn
	for start, n := range dc.busyStarts {
		if n > 0 && start < r {
			r = start
		}
	}
	return r
}

// BusyEntries returns the number of transactions currently holding
// directory entries busy.
func (dc *DirController) BusyEntries() int {
	n := 0
	for _, c := range dc.busyStarts {
		n += c
	}
	return n
}

// MemData returns the memory image's token for addr.
func (dc *DirController) MemData(addr uint64) uint64 {
	if v, ok := dc.mem[addr]; ok {
		return v
	}
	return InitialData(addr)
}

// ForEachEntry visits every directory entry (for invariant checking).
func (dc *DirController) ForEachEntry(f func(addr uint64, owner int, sharers uint32, busy bool)) {
	for addr, e := range dc.entries {
		f(addr, e.owner, e.sharers, e.busy)
	}
}

// Entry returns the directory view (owner, sharers) of addr.
func (dc *DirController) Entry(addr uint64) (owner int, sharers uint32) {
	e, ok := dc.entries[addr]
	if !ok {
		return MemOwner, 0
	}
	return e.owner, e.sharers
}

// DirectWriteback absorbs a validated dirty victim displaced during
// another node's recovery restore. Recovery is globally quiesced, so the
// state surgery is safe — it models a recovery-time writeback.
func (dc *DirController) DirectWriteback(addr, data uint64) {
	dc.mem[addr] = data
	e := dc.entry(addr)
	e.owner = MemOwner
}

func (dc *DirController) entry(addr uint64) *dirEntry {
	e, ok := dc.entries[addr]
	if !ok {
		e = &dirEntry{owner: MemOwner}
		dc.entries[addr] = e
	}
	return e
}

// occupy serializes the controller: a request starting now completes
// after lat cycles of occupancy, queued behind earlier work, with optional
// pseudo-random perturbation (the Alameldeen et al. methodology).
func (dc *DirController) occupy(lat sim.Time, fn func()) {
	dc.eng.Schedule(dc.occupyStart(lat), fn)
}

// occupyArg is occupy for a pre-bound func(any), avoiding the per-call
// closure on the request-dispatch hot path.
func (dc *DirController) occupyArg(lat sim.Time, fn func(any), arg any) {
	dc.eng.ScheduleArg(dc.occupyStart(lat), fn, arg)
}

func (dc *DirController) occupyStart(lat sim.Time) sim.Time {
	if dc.p.LatencyPerturbation > 0 {
		lat += sim.Time(dc.jitter.Uint64n(dc.p.LatencyPerturbation + 1))
	}
	start := dc.eng.Now()
	if dc.busyUntil > start {
		start = dc.busyUntil
	}
	dc.busyUntil = start + lat
	return start + lat
}

// Handle processes a message delivered to this node's directory. It owns
// m: the message stays alive across the controller-occupancy delay and is
// released once its handler completes (onAckDone keeps it longer across
// CLB-stall retries).
func (dc *DirController) Handle(m *msg.Message) {
	switch m.Type {
	case msg.GETS, msg.GETX, msg.PUTX, msg.AckDone:
	default:
		panic(fmt.Sprintf("protocol: directory got %v", m))
	}
	if m.Corrupted {
		// Detected by the memory controller's error-detecting code; the
		// writeback data must not be absorbed. The evictor's timeout (it
		// never gets a WBAck) or the validation watchdog converts the
		// loss into a recovery.
		msg.Release(m)
		return
	}
	dc.stats.Requests++
	dc.occupyArg(sim.Time(dc.p.DirAccessCycles), dc.dispatchFn, m)
}

// dispatch runs once the controller-occupancy delay elapsed.
func (dc *DirController) dispatch(a any) {
	m := a.(*msg.Message)
	if m.Epoch != dc.nw.Epoch() {
		msg.Release(m)
		return // request predates a recovery
	}
	switch m.Type {
	case msg.GETS:
		dc.onGETS(m)
	case msg.GETX:
		dc.onGETX(m)
	case msg.PUTX:
		dc.onPUTX(m)
	case msg.AckDone:
		dc.onAckDone(m) // releases m on its terminal paths
		return
	}
	msg.Release(m)
}

func (dc *DirController) nack(m *msg.Message) {
	dc.stats.Nacks++
	n := msg.Alloc()
	*n = msg.Message{Type: msg.NackReq, Src: dc.node, Dst: m.Src, Addr: m.Addr, Txn: m.Txn}
	dc.nw.Send(n)
}

func (dc *DirController) onGETS(m *msg.Message) {
	e := dc.entry(m.Addr)
	if e.busy {
		dc.nack(m)
		return
	}
	if e.owner == MemOwner {
		// 2-hop: memory supplies a shared copy. Adding a sharer is not
		// an update-action (a stale sharer bit is always safe), so
		// nothing is logged and no final acknowledgment is needed. The
		// entry stays busy until the data leaves, so a racing GETX
		// cannot slip an invalidation ahead of the response.
		e.sharers |= sharerBit(m.Src)
		e.busy = true
		e.pend = pending{typ: msg.GETS, requestor: m.Src, txn: m.Txn, startCCN: dc.ccn}
		cn := msg.Null
		if dc.sn {
			cn = core.UpdatedCN(dc.ccn)
		}
		addr, src, txn := m.Addr, m.Src, m.Txn
		ep := dc.nw.Epoch()
		dc.stats.MemReads++
		dc.occupy(sim.Time(dc.p.MemAccessCycles), func() {
			if ep != dc.nw.Epoch() {
				return
			}
			e.busy = false
			e.pend = pending{}
			resp := msg.Alloc()
			*resp = msg.Message{
				Type: msg.Data, Src: dc.node, Dst: src, Addr: addr,
				Data: dc.MemData(addr), CN: cn, Txn: txn,
			}
			dc.nw.Send(resp)
		})
		return
	}
	// 3-hop: forward to the owning cache (which may be the requestor
	// itself if its copy sits in a writeback buffer).
	e.busy = true
	e.pend = pending{typ: msg.GETS, requestor: m.Src, txn: m.Txn, startCCN: dc.ccn}
	dc.busyStarts[dc.ccn]++
	dc.stats.Forwards++
	resp := msg.Alloc()
	*resp = msg.Message{
		Type: msg.FwdGETS, Src: dc.node, Dst: e.owner, Addr: m.Addr,
		Requestor: m.Src, Txn: m.Txn,
	}
	dc.nw.Send(resp)
}

func (dc *DirController) onGETX(m *msg.Message) {
	e := dc.entry(m.Addr)
	if e.busy {
		dc.nack(m)
		return
	}
	if dc.sn && dc.clb.Full() {
		// The ownership change will need a log entry; refuse rather than
		// risk losing it (SafetyNet protocol change #2).
		dc.nack(m)
		return
	}
	req := m.Src
	others := e.sharers &^ sharerBit(req)
	ackCount := popcount(others)
	e.busy = true
	e.pend = pending{typ: msg.GETX, requestor: req, txn: m.Txn, startCCN: dc.ccn}
	dc.busyStarts[dc.ccn]++
	for s := 0; s < dc.p.NumNodes; s++ {
		if others&sharerBit(s) != 0 {
			resp := msg.Alloc()
			*resp = msg.Message{
				Type: msg.Inv, Src: dc.node, Dst: s, Addr: m.Addr,
				Requestor: req, Txn: m.Txn,
			}
			dc.nw.Send(resp)
		}
	}
	cn := msg.Null
	if dc.sn {
		cn = core.UpdatedCN(dc.ccn)
	}
	switch {
	case e.owner == MemOwner && e.sharers&sharerBit(req) != 0 && m.HaveData:
		// Upgrade: the requestor attests it holds the data; grant
		// permission only then — the sharer bit alone may be a stale
		// superset left by a silent eviction or a recovery.
		resp := msg.Alloc()
		*resp = msg.Message{
			Type: msg.AckCount, Src: dc.node, Dst: req, Addr: m.Addr,
			CN: cn, AckCount: ackCount, Txn: m.Txn,
		}
		dc.nw.Send(resp)
	case e.owner == MemOwner:
		addr, txn := m.Addr, m.Txn
		ep := dc.nw.Epoch()
		dc.stats.MemReads++
		dc.occupy(sim.Time(dc.p.MemAccessCycles), func() {
			if ep != dc.nw.Epoch() {
				return
			}
			resp := msg.Alloc()
			*resp = msg.Message{
				Type: msg.DataEx, Src: dc.node, Dst: req, Addr: addr,
				Data: dc.MemData(addr), CN: cn, AckCount: ackCount, Txn: txn,
			}
			dc.nw.Send(resp)
		})
	case e.owner == req:
		// The owner upgrades O -> M: it has the data; kill the sharers.
		resp := msg.Alloc()
		*resp = msg.Message{
			Type: msg.AckCount, Src: dc.node, Dst: req, Addr: m.Addr,
			CN: cn, AckCount: ackCount, Txn: m.Txn,
		}
		dc.nw.Send(resp)
	default:
		dc.stats.Forwards++
		resp := msg.Alloc()
		*resp = msg.Message{
			Type: msg.FwdGETX, Src: dc.node, Dst: e.owner, Addr: m.Addr,
			Requestor: req, AckCount: ackCount, Txn: m.Txn,
		}
		dc.nw.Send(resp)
	}
}

func (dc *DirController) onPUTX(m *msg.Message) {
	e := dc.entry(m.Addr)
	switch {
	case e.busy:
		dc.nack(m)
	case e.owner != m.Src:
		// The writeback lost a race: ownership already moved through a
		// forwarded request the evictor answered from its buffer.
		resp := msg.Alloc()
		*resp = msg.Message{Type: msg.WBStale, Src: dc.node, Dst: m.Src, Addr: m.Addr, Txn: m.Txn}
		dc.nw.Send(resp)
	default:
		if dc.sn && dc.clb.Full() {
			dc.nack(m)
			return
		}
		if dc.sn {
			dc.logEntry(core.Entry{
				Addr: m.Addr, Tag: m.CN,
				OldData: dc.MemData(m.Addr), OldCN: e.cn,
				MemEntry: true, OldOwner: e.owner, OldSharers: e.sharers,
				HadData: true, Transfer: true,
			})
			e.cn = m.CN
		}
		dc.mem[m.Addr] = m.Data
		dc.stats.MemWrites++
		e.owner = MemOwner
		src, addr, txn := m.Src, m.Addr, m.Txn
		ep := dc.nw.Epoch()
		dc.occupy(sim.Time(dc.p.MemAccessCycles), func() {
			if ep != dc.nw.Epoch() {
				return
			}
			resp := msg.Alloc()
			*resp = msg.Message{Type: msg.WBAck, Src: dc.node, Dst: src, Addr: addr, Txn: txn}
			dc.nw.Send(resp)
		})
	}
}

// onAckDone closes a transaction: the deferred directory change applies,
// tagged with the transaction's point-of-atomicity CN carried by the
// acknowledgment (SafetyNet protocol change #3).
func (dc *DirController) onAckDone(m *msg.Message) {
	e := dc.entry(m.Addr)
	if !e.busy || e.pend.txn != m.Txn {
		msg.Release(m)
		return // duplicate or superseded
	}
	if e.pend.typ == msg.GETX {
		if dc.sn {
			if dc.clb.Full() {
				// The entry change must be logged; hold the completion
				// (and m) until validation frees space.
				dc.stats.CLBStallCycles += clbRetryCycles
				dc.eng.After(clbRetryCycles, func() {
					if m.Epoch != dc.nw.Epoch() {
						msg.Release(m)
						return
					}
					dc.onAckDone(m)
				})
				return
			}
			dc.logEntry(core.Entry{
				Addr: m.Addr, Tag: m.CN,
				OldData: dc.MemData(m.Addr), OldCN: e.cn,
				MemEntry: true, OldOwner: e.owner, OldSharers: e.sharers,
				Transfer: true,
			})
			e.cn = m.CN
		}
		e.owner = e.pend.requestor
		e.sharers = 0
	} else {
		// 3-hop GETS: the requestor became a sharer; the previous owner
		// keeps ownership (M -> O happened at the owner). A sharer
		// addition needs no log.
		e.sharers |= sharerBit(e.pend.requestor)
	}
	e.busy = false
	dc.busyStarts[e.pend.startCCN]--
	if dc.busyStarts[e.pend.startCCN] == 0 {
		delete(dc.busyStarts, e.pend.startCCN)
	}
	e.pend = pending{}
	msg.Release(m)
	if dc.OnReadyChange != nil {
		dc.OnReadyChange()
	}
}

func (dc *DirController) logEntry(e core.Entry) {
	if !dc.clb.Append(e) {
		panic("protocol: directory logged into a full CLB (caller must check)")
	}
	dc.stats.EntriesLogged++
}

// Recover rolls the directory and memory image back to checkpoint rpcn:
// discard busy transaction state and unroll the memory-side CLB in
// reverse (paper §3.6: "memories sequentially undo the actions in their
// CLBs"). It returns the number of entries unrolled.
func (dc *DirController) Recover(rpcn msg.CN) int {
	for _, e := range dc.entries {
		e.busy = false
		e.pend = pending{}
	}
	dc.busyStarts = make(map[msg.CN]int)
	n := 0
	if dc.clb != nil {
		n = dc.clb.Unroll(func(e core.Entry) {
			de := dc.entry(e.Addr)
			if e.HadData {
				dc.mem[e.Addr] = e.OldData
			}
			de.owner = e.OldOwner
			de.sharers = e.OldSharers
			de.cn = e.OldCN
		})
	}
	dc.ccn = rpcn
	return n
}
