// Package protocol implements the system's MOSI directory cache coherence
// protocol in the style of the SGI Origin (the paper's §4.1 memory model):
// cache controllers with MSHRs, writeback buffers and transient states, and
// directory/memory controllers with owner/sharer entries, busy states and
// nacks. 2-hop transactions are served by the home memory; 3-hop
// transactions forward to the owning cache.
//
// SafetyNet's three protocol changes (paper §3.7) are integrated and
// enabled by the SafetyNet flag:
//  1. data responses carry the checkpoint number of the transaction's
//     point of atomicity;
//  2. directories and caches may nack coherence requests to avoid filling
//     a Checkpoint Log Buffer;
//  3. transactions close with a final acknowledgment from the requestor to
//     the directory carrying the point-of-atomicity CN.
package protocol

import "math/bits"

// HomeFunc maps a block address to its home node (directory + memory
// slice). The standard mapping interleaves blocks across nodes.
type HomeFunc func(addr uint64) int

// InterleavedHome returns the standard block-interleaved home mapping.
func InterleavedHome(blockBytes, numNodes int) HomeFunc {
	bb := uint64(blockBytes)
	n := uint64(numNodes)
	return func(addr uint64) int { return int((addr / bb) % n) }
}

// InitialData returns the deterministic initial memory token of a block.
// Workload stores overwrite it with (node, sequence) tokens; tests use the
// function as the reference image of untouched memory.
func InitialData(addr uint64) uint64 {
	z := addr + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 27)
}

// MemOwner is the directory owner value meaning "memory owns the block".
const MemOwner = -1

func popcount(x uint32) int { return bits.OnesCount32(x) }

func sharerBit(node int) uint32 { return 1 << uint(node) }
