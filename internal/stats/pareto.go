// Multi-objective dominance and Pareto-frontier helpers used by the
// exploration engine (internal/explore). All objectives are expressed
// maximize-is-better; callers negate minimized quantities before
// calling in. Functions are pure and deterministic: ties and orderings
// depend only on the input values and indices, never on map iteration
// or randomness, so frontier reports stay byte-identical at any worker
// count.
package stats

import (
	"math"
	"sort"
)

// Dominates reports whether objective vector a Pareto-dominates b:
// a is at least as good in every objective and strictly better in at
// least one. Vectors must have equal length; NaN in either vector
// makes the comparison false both ways (NaN is incomparable, so a
// NaN-carrying point can never dominate, and is never dominated —
// callers filter invalid points before frontier extraction).
func Dominates(a, b []float64) bool {
	if len(a) != len(b) || len(a) == 0 {
		return false
	}
	strict := false
	for i := range a {
		if a[i] != a[i] || b[i] != b[i] { // NaN: incomparable
			return false
		}
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// ParetoFront returns the indices of the nondominated points, in input
// order. Duplicate vectors are all kept (none dominates its copy), so
// equally-good configurations all surface in the frontier.
func ParetoFront(points [][]float64) []int {
	front := make([]int, 0, len(points))
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// CrowdingDistances returns the NSGA-II crowding distance of each
// point, intended for points within a single nondominated front: for
// every objective the points are sorted by value, the two boundary
// points get +Inf, and interior points accumulate the normalized gap
// between their neighbors. Larger is less crowded; selecting by
// descending distance preserves the extremes of every objective, which
// a single-objective tie-break would truncate. Objectives where every
// point is equal (or whose spread is not a positive finite number)
// contribute nothing beyond the boundary +Inf. Fewer than three points
// are all boundaries. Ties in value are broken by index, so the result
// is deterministic.
func CrowdingDistances(points [][]float64) []float64 {
	d := make([]float64, len(points))
	if len(points) == 0 {
		return d
	}
	inf := math.Inf(1)
	if len(points) <= 2 {
		for i := range d {
			d[i] = inf
		}
		return d
	}
	order := make([]int, len(points))
	for m := range points[0] {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return points[order[a]][m] < points[order[b]][m]
		})
		lo, hi := order[0], order[len(order)-1]
		d[lo], d[hi] = inf, inf
		spread := points[hi][m] - points[lo][m]
		if !(spread > 0) || math.IsInf(spread, 1) { // flat, NaN, or unnormalizable
			continue
		}
		for k := 1; k < len(order)-1; k++ {
			d[order[k]] += (points[order[k+1]][m] - points[order[k-1]][m]) / spread
		}
	}
	return d
}

// NondominatedRanks assigns each point its nondominated-sorting rank:
// rank 0 is the Pareto front, rank 1 the front after removing rank 0,
// and so on (NSGA-style fronts). Points whose vectors contain NaN are
// incomparable and end up in rank 0 by dominance rules; callers filter
// them beforehand when that is not wanted.
func NondominatedRanks(points [][]float64) []int {
	rank := make([]int, len(points))
	for i := range rank {
		rank[i] = -1
	}
	remaining := len(points)
	for r := 0; remaining > 0; r++ {
		// Collect the front among unranked points.
		var front []int
		for i := range points {
			if rank[i] != -1 {
				continue
			}
			dominated := false
			for j := range points {
				if rank[j] == -1 && i != j && Dominates(points[j], points[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				front = append(front, i)
			}
		}
		if len(front) == 0 {
			// All remaining points dominated each other transitively —
			// impossible for strict dominance, but guard against an
			// infinite loop on malformed input.
			for i := range points {
				if rank[i] == -1 {
					rank[i] = r
				}
			}
			return rank
		}
		for _, i := range front {
			rank[i] = r
		}
		remaining -= len(front)
	}
	return rank
}
