package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := s.Stddev(); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("stddev = %v, want ~2.138 (sample stddev)", got)
	}
	if s.N() != 8 || s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("N/Min/Max = %d/%v/%v", s.N(), s.Min(), s.Max())
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	one := Sample{}
	one.Add(3)
	if one.Stddev() != 0 {
		t.Fatal("single observation has zero stddev")
	}
}

func TestOverlaps(t *testing.T) {
	a, b, c := &Sample{}, &Sample{}, &Sample{}
	for _, v := range []float64{0.99, 1.00, 1.01} {
		a.Add(v)
	}
	for _, v := range []float64{1.00, 1.01, 1.02} {
		b.Add(v)
	}
	for _, v := range []float64{2.0, 2.01, 2.02} {
		c.Add(v)
	}
	if !Overlaps(a, b) {
		t.Fatal("close samples must overlap")
	}
	if Overlaps(a, c) {
		t.Fatal("distant samples must not overlap")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 1.0, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(2.0, 1.0, 10); got != "##########" {
		t.Fatalf("overflow must clamp: %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 1, 10) != "" {
		t.Fatal("degenerate inputs must render empty")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{{"longer", "1"}, {"x", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[1], "----") {
		t.Fatalf("bad table:\n%s", out)
	}
}

// Property: stddev is invariant under translation and scales linearly.
func TestStddevProperties(t *testing.T) {
	f := func(vals []float64, shift float64) bool {
		if len(vals) < 2 || len(vals) > 50 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		var a, b Sample
		for _, v := range vals {
			a.Add(v)
			b.Add(v + shift)
		}
		return math.Abs(a.Stddev()-b.Stddev()) < 1e-6*(1+a.Stddev())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1, 0); got != "n/a" {
		t.Fatalf("Pct(1,0) = %q", got)
	}
	if got := Pct(1, 4); got != "25.00%" {
		t.Fatalf("Pct(1,4) = %q", got)
	}
	if got := Pct(0, 3); got != "0.00%" {
		t.Fatalf("Pct(0,3) = %q", got)
	}
}

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(6, 3); got != 2 {
		t.Fatalf("SafeDiv(6,3) = %v", got)
	}
	if got := SafeDiv(1, 0); got != 0 {
		t.Fatalf("SafeDiv(1,0) = %v", got)
	}
	if got := SafeDiv(0, 0); got != 0 {
		t.Fatalf("SafeDiv(0,0) = %v", got)
	}
}
