package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := s.Stddev(); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("stddev = %v, want ~2.138 (sample stddev)", got)
	}
	if s.N() != 8 || s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("N/Min/Max = %d/%v/%v", s.N(), s.Min(), s.Max())
	}
}

func TestEmptySampleSafe(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	one := Sample{}
	one.Add(3)
	if one.Stddev() != 0 {
		t.Fatal("single observation has zero stddev")
	}
}

func TestOverlaps(t *testing.T) {
	a, b, c := &Sample{}, &Sample{}, &Sample{}
	for _, v := range []float64{0.99, 1.00, 1.01} {
		a.Add(v)
	}
	for _, v := range []float64{1.00, 1.01, 1.02} {
		b.Add(v)
	}
	for _, v := range []float64{2.0, 2.01, 2.02} {
		c.Add(v)
	}
	if !Overlaps(a, b) {
		t.Fatal("close samples must overlap")
	}
	if Overlaps(a, c) {
		t.Fatal("distant samples must not overlap")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 1.0, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(2.0, 1.0, 10); got != "##########" {
		t.Fatalf("overflow must clamp: %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 1, 10) != "" {
		t.Fatal("degenerate inputs must render empty")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{{"longer", "1"}, {"x", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[1], "----") {
		t.Fatalf("bad table:\n%s", out)
	}
}

// Property: stddev is invariant under translation and scales linearly.
func TestStddevProperties(t *testing.T) {
	f := func(vals []float64, shift float64) bool {
		if len(vals) < 2 || len(vals) > 50 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		var a, b Sample
		for _, v := range vals {
			a.Add(v)
			b.Add(v + shift)
		}
		return math.Abs(a.Stddev()-b.Stddev()) < 1e-6*(1+a.Stddev())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for _, v := range []float64{15, 20, 35, 40, 50} {
		s.Add(v)
	}
	cases := map[float64]float64{
		0:   15,
		25:  20,
		50:  35,
		75:  40,
		100: 50,
		40:  29, // rank 1.6 between 20 and 35
	}
	for p, want := range cases {
		if got := s.Percentile(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", p, got, want)
		}
	}
	if s.Median() != 35 {
		t.Errorf("Median = %v, want 35", s.Median())
	}
	// Out-of-range p clamps instead of extrapolating.
	if s.Percentile(-10) != 15 || s.Percentile(200) != 50 {
		t.Error("out-of-range percentile must clamp")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var empty Sample
	if empty.Percentile(50) != 0 || empty.Median() != 0 {
		t.Fatal("empty sample percentile must be 0")
	}
	one := Sample{}
	one.Add(7)
	for _, p := range []float64{0, 50, 100} {
		if one.Percentile(p) != 7 {
			t.Fatalf("n=1 Percentile(%v) = %v, want 7", p, one.Percentile(p))
		}
	}
	equal := Sample{}
	for i := 0; i < 5; i++ {
		equal.Add(3.5)
	}
	if equal.Percentile(5) != 3.5 || equal.Percentile(95) != 3.5 {
		t.Fatal("all-equal sample percentiles must equal the value")
	}
	// Percentile must not mutate the insertion order Values reports.
	unsorted := Sample{}
	for _, v := range []float64{3, 1, 2} {
		unsorted.Add(v)
	}
	unsorted.Percentile(50)
	if vals := unsorted.Values(); vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("Percentile reordered the sample: %v", vals)
	}
}

func TestBootstrapCI(t *testing.T) {
	if lo, hi := BootstrapCI(nil, 0.95); lo != 0 || hi != 0 {
		t.Fatalf("empty CI = (%v, %v), want (0, 0)", lo, hi)
	}
	if lo, hi := BootstrapCI([]float64{4.2}, 0.95); lo != 4.2 || hi != 4.2 {
		t.Fatalf("n=1 CI = (%v, %v), want (4.2, 4.2)", lo, hi)
	}
	if lo, hi := BootstrapCI([]float64{2, 2, 2, 2}, 0.95); lo != 2 || hi != 2 {
		t.Fatalf("all-equal CI = (%v, %v), want (2, 2)", lo, hi)
	}

	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	lo, hi := BootstrapCI(vals, 0.95)
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatal("CI must be NaN-free")
	}
	if lo >= hi {
		t.Fatalf("CI = (%v, %v): lower bound must be below upper", lo, hi)
	}
	mean := 5.5
	if lo > mean || hi < mean {
		t.Fatalf("CI (%v, %v) must bracket the sample mean %v", lo, hi, mean)
	}
	if lo < 1 || hi > 10 {
		t.Fatalf("CI (%v, %v) outside the data range", lo, hi)
	}

	// Deterministic: identical inputs give identical intervals.
	lo2, hi2 := BootstrapCI(vals, 0.95)
	if lo != lo2 || hi != hi2 {
		t.Fatal("BootstrapCI is not deterministic")
	}

	// A wider confidence level gives a wider (or equal) interval.
	lo99, hi99 := BootstrapCI(vals, 0.99)
	if hi99-lo99 < hi-lo {
		t.Fatalf("99%% CI (%v, %v) narrower than 95%% CI (%v, %v)", lo99, hi99, lo, hi)
	}

	// Degenerate conf falls back to 95% instead of collapsing.
	loD, hiD := BootstrapCI(vals, 0)
	if loD != lo || hiD != hi {
		t.Fatal("conf=0 must fall back to the 95% default")
	}
}

// TestSummarizeNaNFree: every field of the summary is finite for the
// empty sample, a single observation, and an all-equal sample.
func TestSummarizeNaNFree(t *testing.T) {
	samples := map[string]*Sample{
		"empty":     {},
		"single":    {},
		"all-equal": {},
	}
	samples["single"].Add(3)
	for i := 0; i < 4; i++ {
		samples["all-equal"].Add(1.5)
	}
	for name, s := range samples {
		sum := s.Summarize()
		for field, v := range map[string]float64{
			"Mean": sum.Mean, "Stddev": sum.Stddev, "Min": sum.Min, "Max": sum.Max,
			"Median": sum.Median, "P5": sum.P5, "P95": sum.P95, "CILo": sum.CILo, "CIHi": sum.CIHi,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: Summary.%s = %v, want finite", name, field, v)
			}
		}
	}
	s := samples["single"]
	sum := s.Summarize()
	if sum.N != 1 || sum.Mean != 3 || sum.Median != 3 || sum.CILo != 3 || sum.CIHi != 3 {
		t.Fatalf("single-observation summary = %+v", sum)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1, 0); got != "n/a" {
		t.Fatalf("Pct(1,0) = %q", got)
	}
	if got := Pct(1, 4); got != "25.00%" {
		t.Fatalf("Pct(1,4) = %q", got)
	}
	if got := Pct(0, 3); got != "0.00%" {
		t.Fatalf("Pct(0,3) = %q", got)
	}
}

func TestSafeDiv(t *testing.T) {
	if got := SafeDiv(6, 3); got != 2 {
		t.Fatalf("SafeDiv(6,3) = %v", got)
	}
	if got := SafeDiv(1, 0); got != 0 {
		t.Fatalf("SafeDiv(1,0) = %v", got)
	}
	if got := SafeDiv(0, 0); got != 0 {
		t.Fatalf("SafeDiv(0,0) = %v", got)
	}
}
