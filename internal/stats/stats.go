// Package stats provides the statistical treatment of the paper's
// methodology (§4.1, after Alameldeen et al.): each design point is
// simulated several times with pseudo-random latency perturbations, and
// results are reported as a mean with an error bar of one standard
// deviation in each direction.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Sample aggregates observations of one quantity.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min and Max return extrema (0 for empty samples).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders "mean ± stddev".
func (s *Sample) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean(), s.Stddev())
}

// Overlaps reports whether two samples' one-standard-deviation error bars
// overlap — the paper's working notion of "statistically similar"
// performance.
func Overlaps(a, b *Sample) bool {
	aLo, aHi := a.Mean()-a.Stddev(), a.Mean()+a.Stddev()
	bLo, bHi := b.Mean()-b.Stddev(), b.Mean()+b.Stddev()
	return aLo <= bHi && bLo <= aHi
}

// Pct formats num/den as a percentage, or "n/a" for a zero denominator.
func Pct(num, den uint64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}

// SafeDiv returns a/b, or 0 when b is zero.
func SafeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Bar renders a crude horizontal bar of the given relative value in
// [0, max] using width runes; used for figure-like terminal output.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Table renders rows of cells with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
