// Package stats provides the statistical treatment of the paper's
// methodology (§4.1, after Alameldeen et al.): each design point is
// simulated several times with pseudo-random latency perturbations, and
// results are reported as a mean with an error bar of one standard
// deviation in each direction.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample aggregates observations of one quantity.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min and Max return extrema (0 for empty samples).
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// String renders "mean ± stddev".
func (s *Sample) String() string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean(), s.Stddev())
}

// Values returns a copy of the observations in insertion order.
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// Percentile returns the p-th percentile (p in [0, 100]) by linear
// interpolation between closest ranks on the sorted observations. The
// empty sample reports 0, a single observation reports itself, and p is
// clamped into range, so the result is never NaN.
func (s *Sample) Percentile(p float64) float64 {
	return Percentile(s.values, p)
}

// Median is the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Percentile computes the p-th percentile of values (not necessarily
// sorted) by linear interpolation between closest ranks; see
// Sample.Percentile for the edge-case guarantees.
func Percentile(values []float64, p float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return values[0]
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// bootstrapIters is the number of resamples BootstrapCI draws; 1000 is
// the textbook default and keeps a hundreds-of-runs campaign reduction
// in the milliseconds.
const bootstrapIters = 1000

// splitmix64 steps the deterministic RNG the bootstrap uses. It is
// seeded from a constant, never from time or global state, so a report
// reduced from the same results is byte-identical on every machine and
// at every worker count.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// BootstrapCI estimates a confidence interval for the mean by the
// percentile bootstrap: iters resamples with replacement, each reduced
// to its mean, with the (1-conf)/2 and (1+conf)/2 percentiles of that
// distribution as the bounds. conf is a fraction (0.95 for 95%). The
// resampling RNG is deterministic, so identical inputs give identical
// intervals. Guarantees: the empty sample reports (0, 0), a single
// observation reports (v, v), an all-equal sample reports (v, v), and
// the result is never NaN.
func BootstrapCI(values []float64, conf float64) (lo, hi float64) {
	n := len(values)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		return values[0], values[0]
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	allEqual := true
	for _, v := range values[1:] {
		if v != values[0] {
			allEqual = false
			break
		}
	}
	if allEqual {
		return values[0], values[0]
	}
	state := uint64(0x5EED5EED) ^ uint64(n)<<32
	means := make([]float64, bootstrapIters)
	for i := range means {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += values[splitmix64(&state)%uint64(n)]
		}
		means[i] = sum / float64(n)
	}
	alpha := (1 - conf) / 2
	return Percentile(means, 100*alpha), Percentile(means, 100*(1-alpha))
}

// Summary is the full statistical description of one sample, shaped for
// structured reports: JSON field names are part of the campaign report
// format.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	P5     float64 `json:"p5"`
	P95    float64 `json:"p95"`
	// CILo and CIHi bound the 95% bootstrap confidence interval for the
	// mean.
	CILo float64 `json:"ci95_lo"`
	CIHi float64 `json:"ci95_hi"`
}

// Summarize describes the sample: moments, extrema, percentiles, and a
// 95% bootstrap confidence interval for the mean. Every field of the
// result is finite (never NaN) for any sample, including the empty one.
func (s *Sample) Summarize() Summary {
	lo, hi := BootstrapCI(s.values, 0.95)
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Stddev: s.Stddev(),
		Min:    s.Min(),
		Max:    s.Max(),
		Median: s.Median(),
		P5:     s.Percentile(5),
		P95:    s.Percentile(95),
		CILo:   lo,
		CIHi:   hi,
	}
}

// Overlaps reports whether two samples' one-standard-deviation error bars
// overlap — the paper's working notion of "statistically similar"
// performance.
func Overlaps(a, b *Sample) bool {
	aLo, aHi := a.Mean()-a.Stddev(), a.Mean()+a.Stddev()
	bLo, bHi := b.Mean()-b.Stddev(), b.Mean()+b.Stddev()
	return aLo <= bHi && bLo <= aHi
}

// Pct formats num/den as a percentage, or "n/a" for a zero denominator.
func Pct(num, den uint64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}

// SafeDiv returns a/b, or 0 when b is zero.
func SafeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Bar renders a crude horizontal bar of the given relative value in
// [0, max] using width runes; used for figure-like terminal output.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Table renders rows of cells with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
