package stats

import (
	"math"
	"reflect"
	"testing"
)

func TestDominates(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 0}, true},
		{[]float64{0, 0}, []float64{0, 0}, false}, // equal: no strict improvement
		{[]float64{1, 0}, []float64{0, 1}, false}, // trade-off: incomparable
		{[]float64{0, 1}, []float64{1, 0}, false},
		{[]float64{0, 0}, []float64{1, 1}, false},
		{[]float64{nan, 2}, []float64{0, 0}, false}, // NaN never dominates
		{[]float64{1, 1}, []float64{nan, 0}, false}, // NaN never dominated
		{[]float64{1}, []float64{0, 0}, false},      // length mismatch
		{nil, nil, false},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestParetoFront(t *testing.T) {
	// Classic two-objective trade-off plus one dominated interior point
	// and one duplicate of a frontier point.
	pts := [][]float64{
		{1, 4}, // frontier
		{2, 3}, // frontier
		{1, 3}, // dominated by {2,3} and {1,4}... ({1,4} dominates: 1>=1, 4>3)
		{4, 1}, // frontier
		{2, 3}, // duplicate of index 1: kept
	}
	got := ParetoFront(pts)
	want := []int{0, 1, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParetoFront = %v, want %v", got, want)
	}
}

func TestParetoFrontEmptyAndSingleton(t *testing.T) {
	if got := ParetoFront(nil); len(got) != 0 {
		t.Fatalf("ParetoFront(nil) = %v", got)
	}
	if got := ParetoFront([][]float64{{7}}); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("singleton front = %v", got)
	}
}

func TestNondominatedRanks(t *testing.T) {
	pts := [][]float64{
		{3, 3}, // rank 0
		{2, 2}, // rank 1 (dominated only by {3,3})
		{1, 1}, // rank 2
		{3, 1}, // rank 0? {3,3} dominates (3>=3, 3>1) -> rank 1; {2,2} doesn't (2<3)
		{0, 4}, // rank 0 (nothing has >=4 in obj 2)
	}
	got := NondominatedRanks(pts)
	want := []int{0, 1, 2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NondominatedRanks = %v, want %v", got, want)
	}
}

func TestNondominatedRanksAllEqual(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	got := NondominatedRanks(pts)
	want := []int{0, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ranks = %v, want %v", got, want)
	}
}

func TestCrowdingDistances(t *testing.T) {
	// A four-point front on two objectives: the extremes of either
	// objective are boundaries (+Inf); the interior points accumulate
	// normalized neighbor gaps per objective.
	pts := [][]float64{
		{0, 3}, // boundary: min obj0, max obj1
		{1, 2}, // interior: (2-0)/3 + (3-1)/3
		{2, 1}, // interior: (3-1)/3 + (2-0)/3
		{3, 0}, // boundary: max obj0, min obj1
	}
	got := CrowdingDistances(pts)
	if !math.IsInf(got[0], 1) || !math.IsInf(got[3], 1) {
		t.Fatalf("boundaries not infinite: %v", got)
	}
	want := 2.0/3 + 2.0/3
	for _, i := range []int{1, 2} {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("interior point %d distance = %v, want %v", i, got[i], want)
		}
	}
}

func TestCrowdingDistancesKeepsObjectiveExtremes(t *testing.T) {
	// The scenario the exploration tie-break exists for: one point is
	// weak on the first objective but the extreme of the second. Sorting
	// by the first objective would rank it last; crowding marks it a
	// boundary so truncation keeps it.
	pts := [][]float64{
		{0.40, 0.41}, // the second-objective extreme
		{0.51, 0.36},
		{1.00, 0.002},
		{1.00, 0.002}, // duplicate of the first-objective extreme
	}
	d := CrowdingDistances(pts)
	if !math.IsInf(d[0], 1) {
		t.Fatalf("second-objective extreme got finite distance %v", d[0])
	}
	// Exactly one of the duplicated extreme points is the sort boundary;
	// ties break by index, deterministically.
	if !math.IsInf(d[2], 1) && !math.IsInf(d[3], 1) {
		t.Fatalf("first-objective extreme got finite distances %v, %v", d[2], d[3])
	}
	d2 := CrowdingDistances(pts)
	if !reflect.DeepEqual(d, d2) {
		t.Fatalf("not deterministic: %v vs %v", d, d2)
	}
}

func TestCrowdingDistancesDegenerate(t *testing.T) {
	if got := CrowdingDistances(nil); len(got) != 0 {
		t.Fatalf("empty input = %v", got)
	}
	for _, pts := range [][][]float64{
		{{1, 2}},
		{{1, 2}, {3, 4}},
	} {
		for i, d := range CrowdingDistances(pts) {
			if !math.IsInf(d, 1) {
				t.Fatalf("%d points: index %d = %v, want +Inf", len(pts), i, d)
			}
		}
	}
	// A flat objective (every point equal) must not divide by zero; the
	// varying objective still separates the points.
	d := CrowdingDistances([][]float64{{5, 0}, {5, 1}, {5, 2}})
	if !math.IsInf(d[0], 1) || !math.IsInf(d[2], 1) {
		t.Fatalf("flat-objective boundaries: %v", d)
	}
	if math.IsNaN(d[1]) || math.IsInf(d[1], 0) {
		t.Fatalf("flat-objective interior = %v, want finite", d[1])
	}
}
