package fault

import (
	"bytes"
	"encoding/json"
	"fmt"

	"safetynet/internal/sim"
	"safetynet/internal/topology"
)

// Stable kind tags of the JSON encoding. Every Event marshals to an
// object carrying one of these under "kind"; the remaining fields are the
// event's parameters. The tags are part of the scenario-file format and
// must never change meaning.
const (
	KindDropOnce      = "drop-once"
	KindDropEvery     = "drop-every"
	KindCorruptOnce   = "corrupt-once"
	KindMisrouteOnce  = "misroute-once"
	KindDuplicateOnce = "duplicate-once"
	KindKillSwitch    = "kill-switch"
)

// Kinds lists the known fault-event kind tags.
func Kinds() []string {
	return []string{KindDropOnce, KindDropEvery, KindCorruptOnce,
		KindMisrouteOnce, KindDuplicateOnce, KindKillSwitch}
}

// UnknownKindError reports a fault-plan entry whose "kind" tag names no
// known event type. Callers test with errors.As.
type UnknownKindError struct {
	Kind string
}

func (e *UnknownKindError) Error() string {
	return fmt.Sprintf("unknown fault kind %q (have %v)", e.Kind, Kinds())
}

// Per-kind wire shapes. Decoding is strict (unknown fields are rejected),
// so an encoded plan is a fixed point: decode→encode→decode cannot drift.
type wireAt struct {
	Kind string `json:"kind"`
	At   uint64 `json:"at"`
}

type wireEvery struct {
	Kind   string `json:"kind"`
	Start  uint64 `json:"start"`
	Period uint64 `json:"period"`
}

type wireKill struct {
	Kind string `json:"kind"`
	Node int    `json:"node"`
	Axis string `json:"axis"`
	At   uint64 `json:"at"`
}

const (
	axisEW = "ew"
	axisNS = "ns"
)

func axisName(a topology.Axis) string {
	if a == topology.NS {
		return axisNS
	}
	return axisEW
}

// MarshalEvent encodes one event in the kind-tagged wire form.
func MarshalEvent(ev Event) ([]byte, error) {
	switch e := ev.(type) {
	case DropOnce:
		return json.Marshal(wireAt{Kind: KindDropOnce, At: uint64(e.At)})
	case DropEvery:
		return json.Marshal(wireEvery{Kind: KindDropEvery, Start: uint64(e.Start), Period: uint64(e.Period)})
	case CorruptOnce:
		return json.Marshal(wireAt{Kind: KindCorruptOnce, At: uint64(e.At)})
	case MisrouteOnce:
		return json.Marshal(wireAt{Kind: KindMisrouteOnce, At: uint64(e.At)})
	case DuplicateOnce:
		return json.Marshal(wireAt{Kind: KindDuplicateOnce, At: uint64(e.At)})
	case KillSwitch:
		return json.Marshal(wireKill{Kind: KindKillSwitch, Node: e.Node, Axis: axisName(e.Axis), At: uint64(e.At)})
	}
	return nil, fmt.Errorf("fault: event type %T has no JSON encoding", ev)
}

// strictUnmarshal decodes into v rejecting unknown fields.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// UnmarshalEvent decodes one kind-tagged event. A tag naming no known
// event type fails with *UnknownKindError; a known kind with stray or
// malformed fields fails with a decoding error.
func UnmarshalEvent(data []byte) (Event, error) {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, err
	}
	switch probe.Kind {
	case KindDropOnce, KindCorruptOnce, KindMisrouteOnce, KindDuplicateOnce:
		var w wireAt
		if err := strictUnmarshal(data, &w); err != nil {
			return nil, err
		}
		at := sim.Time(w.At)
		switch probe.Kind {
		case KindDropOnce:
			return DropOnce{At: at}, nil
		case KindCorruptOnce:
			return CorruptOnce{At: at}, nil
		case KindMisrouteOnce:
			return MisrouteOnce{At: at}, nil
		default:
			return DuplicateOnce{At: at}, nil
		}
	case KindDropEvery:
		var w wireEvery
		if err := strictUnmarshal(data, &w); err != nil {
			return nil, err
		}
		return DropEvery{Start: sim.Time(w.Start), Period: sim.Time(w.Period)}, nil
	case KindKillSwitch:
		var w wireKill
		if err := strictUnmarshal(data, &w); err != nil {
			return nil, err
		}
		var axis topology.Axis
		switch w.Axis {
		case axisEW:
			axis = topology.EW
		case axisNS:
			axis = topology.NS
		default:
			return nil, fmt.Errorf("fault: kill-switch axis must be %q or %q, got %q", axisEW, axisNS, w.Axis)
		}
		return KillSwitch{Node: w.Node, Axis: axis, At: sim.Time(w.At)}, nil
	}
	return nil, &UnknownKindError{Kind: probe.Kind}
}

// MarshalJSON encodes the plan as an array of kind-tagged events; the
// fault-free plan encodes as [].
func (p Plan) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, ev := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		enc, err := MarshalEvent(ev)
		if err != nil {
			return nil, fmt.Errorf("fault plan event %d: %w", i, err)
		}
		b.Write(enc)
	}
	b.WriteByte(']')
	return b.Bytes(), nil
}

// UnmarshalJSON decodes an array of kind-tagged events. An entry with an
// unknown "kind" fails with a wrapped *UnknownKindError.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	plan := make(Plan, 0, len(raw))
	for i, r := range raw {
		ev, err := UnmarshalEvent(r)
		if err != nil {
			return fmt.Errorf("fault plan event %d: %w", i, err)
		}
		plan = append(plan, ev)
	}
	*p = plan
	return nil
}
