package fault_test

import (
	"strings"
	"testing"

	"safetynet/internal/config"
	"safetynet/internal/fault"
	"safetynet/internal/machine"
	"safetynet/internal/sim"
	"safetynet/internal/topology"
	"safetynet/internal/workload"
)

func newMachine(t *testing.T, protected bool) *machine.Machine {
	t.Helper()
	p := config.Default()
	p.SafetyNetEnabled = protected
	prof, err := workload.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	return machine.New(p, prof)
}

func target(m *machine.Machine) fault.Target {
	return fault.Target{Net: m.Net, Topo: m.Topo}
}

func TestPlanString(t *testing.T) {
	if got := (fault.Plan{}).String(); got != "fault-free" {
		t.Fatalf("empty plan String = %q", got)
	}
	p := fault.Plan{
		fault.DropEvery{Start: 100, Period: 2000},
		fault.KillSwitch{Node: 5, Axis: topology.NS, At: 300},
	}
	s := p.String()
	for _, want := range []string{"drop-every", "kill-NS(5)@300", " + "} {
		if !strings.Contains(s, want) {
			t.Errorf("plan String %q missing %q", s, want)
		}
	}
}

func TestArmRejectsInvalidEvents(t *testing.T) {
	m := newMachine(t, true)
	bad := []fault.Plan{
		{fault.DropOnce{At: 0}},
		{fault.DropEvery{Start: 100, Period: 0}},
		{fault.KillSwitch{Node: -1, At: 100}},
		{fault.KillSwitch{Node: m.Topo.Nodes(), At: 100}},
		{fault.KillSwitch{Node: 0, At: 0}},
		{fault.CorruptOnce{At: 0}},
		{fault.MisrouteOnce{At: 0}},
		{fault.DuplicateOnce{At: 0}},
	}
	for _, p := range bad {
		if err := p.Arm(target(m)); err == nil {
			t.Errorf("plan %s: invalid event armed without error", p)
		}
	}
}

func TestArmStopsAtFirstInvalidEvent(t *testing.T) {
	m := newMachine(t, true)
	p := fault.Plan{
		fault.DropOnce{At: 1000},
		fault.KillSwitch{Node: -7, At: 100},
		fault.DropOnce{At: 2000},
	}
	err := p.Arm(target(m))
	if err == nil {
		t.Fatal("invalid middle event must fail the plan")
	}
	if !strings.Contains(err.Error(), "event 1") {
		t.Errorf("error %q does not identify the failing event", err)
	}
}

func TestKillSwitchAxes(t *testing.T) {
	m := newMachine(t, true)
	p := fault.Plan{
		fault.KillSwitch{Node: 3, Axis: topology.EW, At: 1000},
		fault.KillSwitch{Node: 3, Axis: topology.NS, At: 1000},
	}
	if err := p.Arm(target(m)); err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Run(2000)
	if m.Topo.DeadCount() != 2 {
		t.Fatalf("DeadCount = %d after EW+NS kill, want 2", m.Topo.DeadCount())
	}
	if m.Topo.AxisOf(m.Topo.NSSwitch(3)) != topology.NS {
		t.Fatal("NS half-switch mapped to wrong axis")
	}
}

func TestSingleDropRecoversProtected(t *testing.T) {
	m := newMachine(t, true)
	if err := (fault.Plan{fault.DropOnce{At: 200_000}}).Arm(target(m)); err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Run(sim.Time(2_000_000))
	if m.Crashed {
		t.Fatalf("protected system crashed: %s", m.CrashCause)
	}
	if m.Net.DroppedTotal() == 0 {
		t.Fatal("fault never fired")
	}
}
