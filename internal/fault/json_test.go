package fault

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"safetynet/internal/topology"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files from the current encoding")

// goldenPlan is one plan exercising every event kind; its encoding is
// pinned by testdata/plan.golden.json.
func goldenPlan() Plan {
	return Plan{
		DropOnce{At: 1_000_000},
		DropEvery{Start: 500_000, Period: 250_000},
		CorruptOnce{At: 750_000},
		MisrouteOnce{At: 800_000},
		DuplicateOnce{At: 900_000},
		KillSwitch{Node: 5, Axis: topology.EW, At: 1_300_000},
		KillSwitch{Node: 0, Axis: topology.NS, At: 2_000_000},
	}
}

func encodePlan(t *testing.T, p Plan) []byte {
	t.Helper()
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestPlanGoldenEncoding pins the wire format: the kind tags and field
// names are part of the scenario-file format and must never drift.
func TestPlanGoldenEncoding(t *testing.T) {
	path := filepath.Join("testdata", "plan.golden.json")
	got := encodePlan(t, goldenPlan())
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted from golden file %s:\n got: %s\nwant: %s", path, got, want)
	}

	// Decoding the golden file reproduces the original plan.
	var back Plan
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, goldenPlan()) {
		t.Fatalf("golden decode = %#v, want %#v", back, goldenPlan())
	}
}

// TestPlanRoundTripFixedPoint: decode→encode→decode is a fixed point.
func TestPlanRoundTripFixedPoint(t *testing.T) {
	enc1 := encodePlan(t, goldenPlan())
	var p2 Plan
	if err := json.Unmarshal(enc1, &p2); err != nil {
		t.Fatal(err)
	}
	enc2 := encodePlan(t, p2)
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("re-encoding drifted:\n1st: %s\n2nd: %s", enc1, enc2)
	}
}

func TestEmptyPlanEncodesAsEmptyArray(t *testing.T) {
	out, err := json.Marshal(Plan(nil))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[]" {
		t.Fatalf("nil plan = %s, want []", out)
	}
	var p Plan
	if err := json.Unmarshal([]byte("[]"), &p); err != nil {
		t.Fatal(err)
	}
	if len(p) != 0 {
		t.Fatalf("decoded %d events from []", len(p))
	}
}

// TestUnknownKindTypedError: an unknown "kind" fails with the typed
// error, found through errors.As even when wrapped with plan context.
func TestUnknownKindTypedError(t *testing.T) {
	var p Plan
	err := json.Unmarshal([]byte(`[{"kind": "meteor-strike", "at": 5}]`), &p)
	if err == nil {
		t.Fatal("unknown kind must fail")
	}
	var uk *UnknownKindError
	if !errors.As(err, &uk) {
		t.Fatalf("err = %v (%T), want *UnknownKindError", err, err)
	}
	if uk.Kind != "meteor-strike" {
		t.Fatalf("Kind = %q", uk.Kind)
	}
	if !strings.Contains(err.Error(), "event 0") {
		t.Fatalf("error lost plan position: %v", err)
	}
}

// TestStrictEventDecoding: stray fields and malformed axes are rejected,
// so an encoded plan cannot silently lose information.
func TestStrictEventDecoding(t *testing.T) {
	cases := []string{
		`[{"kind": "drop-once", "at": 5, "period": 9}]`,      // stray field
		`[{"kind": "kill-switch", "node": 1, "axis": "up"}]`, // bad axis
		`[{"kind": "drop-every", "start": "soon"}]`,          // wrong type
	}
	for _, c := range cases {
		var p Plan
		if err := json.Unmarshal([]byte(c), &p); err == nil {
			t.Errorf("decode %s succeeded, want error", c)
		}
	}
}

func TestEveryKindRoundTrips(t *testing.T) {
	if got, want := len(Kinds()), 6; got != want {
		t.Fatalf("Kinds() lists %d kinds, want %d", got, want)
	}
	for _, ev := range goldenPlan() {
		enc, err := MarshalEvent(ev)
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		back, err := UnmarshalEvent(enc)
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if back != ev {
			t.Fatalf("round trip %v -> %s -> %v", ev, enc, back)
		}
	}
}
