package fault_test

import (
	"errors"
	"testing"

	"safetynet/internal/fault"
	"safetynet/internal/snoop"
	"safetynet/internal/topology"
	"safetynet/internal/workload"
)

// TestEveryEventArmsOrRejectsOnBothBackends is the cross-backend arming
// contract: every fault event, armed with valid parameters, must either
// install on the target or fail with a typed ErrUnsupported — never
// panic, and never fail with an untyped error.
func TestEveryEventArmsOrRejectsOnBothBackends(t *testing.T) {
	events := []struct {
		ev fault.Event
		// supportedOnSnoop marks events the bus data network can express.
		supportedOnSnoop bool
	}{
		{fault.DropOnce{At: 10_000}, true},
		{fault.DropEvery{Start: 10_000, Period: 50_000}, true},
		{fault.CorruptOnce{At: 10_000}, true},
		{fault.DuplicateOnce{At: 10_000}, true},
		{fault.MisrouteOnce{At: 10_000}, false},
		{fault.KillSwitch{Node: 1, Axis: topology.EW, At: 10_000}, false},
		{fault.KillSwitch{Node: 2, Axis: topology.NS, At: 10_000}, false},
	}

	m := newMachine(t, true)
	sn := snoop.New(snoop.DefaultConfig(), workload.Stress())
	backends := []struct {
		name     string
		target   fault.Target
		supports func(supportedOnSnoop bool) bool
	}{
		{"directory", m.FaultTarget(), func(bool) bool { return true }},
		{"snoop", sn.FaultTarget(), func(s bool) bool { return s }},
	}

	for _, be := range backends {
		for _, tc := range events {
			err := tc.ev.Arm(be.target)
			if be.supports(tc.supportedOnSnoop) {
				if err != nil {
					t.Errorf("%s: %s failed to arm: %v", be.name, tc.ev, err)
				}
				continue
			}
			if !errors.Is(err, fault.ErrUnsupported) {
				t.Errorf("%s: %s err = %v, want ErrUnsupported", be.name, tc.ev, err)
			}
		}
	}
}

// TestEmptyTargetRejected: a target with no interconnect at all must
// error, not dereference nil.
func TestEmptyTargetRejected(t *testing.T) {
	for _, ev := range []fault.Event{
		fault.DropOnce{At: 1},
		fault.DropEvery{Start: 1, Period: 1},
		fault.CorruptOnce{At: 1},
		fault.DuplicateOnce{At: 1},
		fault.MisrouteOnce{At: 1},
		fault.KillSwitch{Node: 0, Axis: topology.EW, At: 1},
	} {
		if err := ev.Arm(fault.Target{}); err == nil {
			t.Errorf("%s armed on an empty target", ev)
		}
	}
}

// TestCorruptLossAccountingMatchesAcrossBackends: a corrupted message is
// discarded at the endpoint's CRC check, so both backends must count it
// in Counters.MessagesDropped.
func TestCorruptLossAccountingMatchesAcrossBackends(t *testing.T) {
	m := newMachine(t, true)
	if err := (fault.CorruptOnce{At: 300_000}).Arm(m.FaultTarget()); err != nil {
		t.Fatal(err)
	}
	m.Start()
	m.Run(1_500_000)
	if c := m.Counters(); c.MessagesDropped == 0 || c.Recoveries == 0 {
		t.Fatalf("directory corrupt loss not accounted: %+v", c)
	}

	sn := snoop.New(snoop.DefaultConfig(), workload.Stress())
	if err := (fault.CorruptOnce{At: 60_000}).Arm(sn.FaultTarget()); err != nil {
		t.Fatal(err)
	}
	sn.Start()
	sn.Run(400_000)
	if c := sn.Counters(); c.MessagesDropped == 0 || c.Recoveries == 0 {
		t.Fatalf("snoop corrupt loss not accounted: %+v", c)
	}
}

// TestSnoopPlanThroughSharedPath arms a composed plan on the snoop
// backend through Plan.Arm, mirroring what harness.Run does.
func TestSnoopPlanThroughSharedPath(t *testing.T) {
	sn := snoop.New(snoop.DefaultConfig(), workload.Stress())
	plan := fault.Plan{
		fault.DropOnce{At: 40_000},
		fault.DropEvery{Start: 100_000, Period: 200_000},
		fault.CorruptOnce{At: 60_000},
	}
	if err := plan.Arm(sn.FaultTarget()); err != nil {
		t.Fatal(err)
	}
	bad := fault.Plan{
		fault.DropOnce{At: 40_000},
		fault.KillSwitch{Node: 3, Axis: topology.EW, At: 50_000},
	}
	err := bad.Arm(sn.FaultTarget())
	if !errors.Is(err, fault.ErrUnsupported) {
		t.Fatalf("plan with a switch kill on the bus: err = %v", err)
	}
}
