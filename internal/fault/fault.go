// Package fault defines composable fault-injection plans. A Plan is an
// ordered list of typed fault events — transient message losses, message
// corruption, misrouting, duplication, and hard half-switch failures —
// that are armed together on one simulated system before it starts. A
// single run can layer any combination (e.g. periodic drops plus a
// switch kill), which the paper's two running examples exercise
// individually and the flat fault descriptors of earlier revisions could
// not express.
package fault

import (
	"errors"
	"fmt"
	"strings"

	"safetynet/internal/network"
	"safetynet/internal/sim"
	"safetynet/internal/topology"
)

// ErrUnsupported marks a fault event the target backend cannot express
// (e.g. a half-switch kill on a snooping bus, which has no switches).
// Arm wraps it, so callers test with errors.Is.
var ErrUnsupported = errors.New("fault event unsupported on this backend")

// DataNet is the unordered point-to-point data network of the snooping
// backend. Message-level fault events arm on it when Target.Data is set;
// snoop.System implements it.
type DataNet interface {
	// InjectDropOnce loses the first data message sent at or after at.
	InjectDropOnce(at sim.Time)
	// InjectDropEvery loses one data message per period, starting at start.
	InjectDropEvery(start, period sim.Time)
	// InjectCorruptOnce damages one data message sent at or after at; the
	// endpoint's error-detecting code discovers it on arrival.
	InjectCorruptOnce(at sim.Time)
	// InjectDuplicateOnce delivers one data message twice at or after at.
	InjectDuplicateOnce(at sim.Time)
}

// Target is the slice of a simulated system that fault events act on.
// Exactly one backend is addressed: the directory machine sets Net (the
// torus interconnect, for message-level faults) and Topo (for half-switch
// kills); the snooping system sets Data (its unordered data network).
// Arm-time validation rejects events the selected backend cannot express
// with ErrUnsupported.
type Target struct {
	Net  *network.Network
	Topo *topology.Torus
	Data DataNet
}

// validate reports a target with no interconnect at all.
func (t Target) validate() error {
	if t.Net == nil && t.Data == nil {
		return errors.New("target has no interconnect to arm faults on")
	}
	return nil
}

// Event is one typed fault in a Plan. Arm schedules or installs the
// fault on the target; it is called once, before the system starts.
type Event interface {
	// Arm installs the fault. An event with impossible parameters (e.g.
	// a switch kill on an out-of-range node) returns an error instead of
	// corrupting the run.
	Arm(t Target) error
	// String describes the event for reports and logs.
	String() string
}

// Plan is an ordered list of fault events armed together on one run.
// The zero value is the fault-free plan.
type Plan []Event

// Arm installs every event of the plan on the target, stopping at the
// first invalid event.
func (p Plan) Arm(t Target) error {
	for i, ev := range p {
		if err := ev.Arm(t); err != nil {
			return fmt.Errorf("fault plan event %d (%s): %w", i, ev, err)
		}
	}
	return nil
}

// String renders the plan as a compact event list.
func (p Plan) String() string {
	if len(p) == 0 {
		return "fault-free"
	}
	parts := make([]string, len(p))
	for i, ev := range p {
		parts[i] = ev.String()
	}
	return strings.Join(parts, " + ")
}

// DropOnce is a one-shot transient interconnect fault: the first
// data-bearing coherence message sent at or after At is lost (paper
// Table 1, "Dropped Message").
type DropOnce struct {
	At sim.Time
}

func (e DropOnce) Arm(t Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	if e.At <= 0 {
		return fmt.Errorf("drop time must be positive, got %d", e.At)
	}
	if t.Data != nil {
		t.Data.InjectDropOnce(e.At)
		return nil
	}
	t.Net.InjectDropOnce(e.At)
	return nil
}

func (e DropOnce) String() string { return fmt.Sprintf("drop-once@%d", e.At) }

// DropEvery is the paper's Experiment 2 transient-fault model: one
// data-bearing coherence message is lost per Period, starting at Start
// (the paper drops one per 100M cycles — ten per second at 1 GHz).
type DropEvery struct {
	Start, Period sim.Time
}

func (e DropEvery) Arm(t Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	if e.Period <= 0 {
		return fmt.Errorf("drop period must be positive, got %d", e.Period)
	}
	if t.Data != nil {
		t.Data.InjectDropEvery(e.Start, e.Period)
		return nil
	}
	t.Net.InjectDropEvery(e.Start, e.Period)
	return nil
}

func (e DropEvery) String() string {
	return fmt.Sprintf("drop-every@%d+%dk", e.Start, e.Period/1000)
}

// CorruptOnce damages one data-bearing coherence message in flight at or
// after At; the endpoint's error-detecting code discovers the damage and
// reports the fault (the paper's CRC example).
type CorruptOnce struct {
	At sim.Time
}

func (e CorruptOnce) Arm(t Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	if e.At <= 0 {
		return fmt.Errorf("corruption time must be positive, got %d", e.At)
	}
	if t.Data != nil {
		t.Data.InjectCorruptOnce(e.At)
		return nil
	}
	t.Net.InjectCorruptOnce(e.At)
	return nil
}

func (e CorruptOnce) String() string { return fmt.Sprintf("corrupt-once@%d", e.At) }

// MisrouteOnce delivers one data-bearing coherence message to the wrong
// node at or after At (paper §5.1); the requestor's timeout converts the
// loss into a recovery.
type MisrouteOnce struct {
	At sim.Time
}

func (e MisrouteOnce) Arm(t Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	if e.At <= 0 {
		return fmt.Errorf("misroute time must be positive, got %d", e.At)
	}
	if t.Net == nil {
		// The snoop data network matches responses to transactions by
		// address, not by routed destination; a misdelivered message is
		// indistinguishable from a drop there, so the event is undefined.
		return fmt.Errorf("%w: misrouting needs the routed torus data network", ErrUnsupported)
	}
	t.Net.InjectMisrouteOnce(e.At)
	return nil
}

func (e MisrouteOnce) String() string { return fmt.Sprintf("misroute-once@%d", e.At) }

// DuplicateOnce delivers one coherence message twice at or after At (the
// paper's §5.1 protocol-engine soft fault); transaction matching must
// absorb the duplicate.
type DuplicateOnce struct {
	At sim.Time
}

func (e DuplicateOnce) Arm(t Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	if e.At <= 0 {
		return fmt.Errorf("duplication time must be positive, got %d", e.At)
	}
	if t.Data != nil {
		t.Data.InjectDuplicateOnce(e.At)
		return nil
	}
	t.Net.InjectDuplicateOnce(e.At)
	return nil
}

func (e DuplicateOnce) String() string { return fmt.Sprintf("duplicate-once@%d", e.At) }

// KillSwitch is the hard fault of the paper's Experiment 3: the given
// half-switch of Node dies at At, irretrievably losing every message
// buffered inside it; routing reconfigures around the dead half.
type KillSwitch struct {
	Node int
	Axis topology.Axis // which half-switch dies: topology.EW or topology.NS
	At   sim.Time
}

func (e KillSwitch) Arm(t Target) error {
	if err := t.validate(); err != nil {
		return err
	}
	if t.Net == nil || t.Topo == nil {
		return fmt.Errorf("%w: a snooping bus has no half-switches to kill", ErrUnsupported)
	}
	if e.Node < 0 || e.Node >= t.Topo.Nodes() {
		return fmt.Errorf("node %d out of range [0, %d)", e.Node, t.Topo.Nodes())
	}
	if e.At <= 0 {
		return fmt.Errorf("kill time must be positive, got %d", e.At)
	}
	sw := t.Topo.EWSwitch(e.Node)
	if e.Axis == topology.NS {
		sw = t.Topo.NSSwitch(e.Node)
	}
	t.Net.KillSwitchAt(sw, e.At)
	return nil
}

func (e KillSwitch) String() string {
	axis := "EW"
	if e.Axis == topology.NS {
		axis = "NS"
	}
	return fmt.Sprintf("kill-%s(%d)@%d", axis, e.Node, e.At)
}
