// Package proc models the paper's processor (§4.1): an in-order core that
// would retire NonMemIPC instructions per cycle on a perfect memory
// system, issues blocking loads and stores to the cache hierarchy, and
// checkpoints its architectural state — registers, modeled here together
// with the workload-generator state that stands in for program state — at
// every checkpoint-clock edge, paying a conservative fixed stall
// (paper: 100 cycles).
package proc

import (
	"safetynet/internal/config"
	"safetynet/internal/iodev"
	"safetynet/internal/msg"
	"safetynet/internal/protocol"
	"safetynet/internal/sim"
	"safetynet/internal/workload"
)

// Snapshot is the processor's architectural state at a checkpoint.
type Snapshot struct {
	Gen    any
	Instrs uint64
	Carry  int
}

// Stats counts processor activity.
type Stats struct {
	MemRefs uint64
	IOOps   uint64
	// CkptStallCycles is time lost to register checkpointing.
	CkptStallCycles uint64
	// BackpressureStalls counts pauses forced by the outstanding-
	// checkpoint bound (validation fell behind).
	BackpressureStalls uint64
}

// Processor drives one node.
type Processor struct {
	node int
	eng  *sim.Engine
	p    config.Params
	cc   *protocol.CacheController
	gen  workload.Generator
	out  *iodev.OutputBuffer

	instrs uint64
	carry  int

	running  bool
	inFlight bool
	epoch    int

	pendingStall sim.Time

	stats Stats
}

// New builds a processor. out may be nil when the workload performs no
// I/O.
func New(node int, eng *sim.Engine, p config.Params, cc *protocol.CacheController, gen workload.Generator, out *iodev.OutputBuffer) *Processor {
	return &Processor{node: node, eng: eng, p: p, cc: cc, gen: gen, out: out}
}

// Instrs returns retired instructions (rolled back by recoveries, so it
// measures durable forward progress).
func (pr *Processor) Instrs() uint64 { return pr.instrs }

// Stats returns a copy of the statistics.
func (pr *Processor) Stats() Stats { return pr.stats }

// Running reports whether the processor is executing.
func (pr *Processor) Running() bool { return pr.running }

// Start begins execution at the current simulation time.
func (pr *Processor) Start() {
	pr.running = true
	if !pr.inFlight {
		pr.next()
	}
}

// Pause stops issuing new work (the in-flight operation, if any, still
// completes). Used for the outstanding-checkpoint bound: SafetyNet stalls
// execution rather than discard the recovery point (paper §3.5).
func (pr *Processor) Pause() {
	if pr.running {
		pr.stats.BackpressureStalls++
	}
	pr.running = false
}

// Resume continues after a Pause or a recovery restart.
func (pr *Processor) Resume() {
	if pr.running {
		return
	}
	pr.running = true
	if !pr.inFlight {
		pr.next()
	}
}

// AddCheckpointStall charges the register-checkpoint latency to the next
// instruction boundary.
func (pr *Processor) AddCheckpointStall() {
	pr.pendingStall += sim.Time(pr.p.RegisterCheckpointCycles)
	pr.stats.CkptStallCycles += pr.p.RegisterCheckpointCycles
}

// Snapshot captures architectural state (for the register checkpoint).
func (pr *Processor) Snapshot() Snapshot {
	return Snapshot{Gen: pr.gen.Snapshot(), Instrs: pr.instrs, Carry: pr.carry}
}

// Restore rewinds to a snapshot; the processor stays paused until the
// restart broadcast resumes it. Any in-flight operation is abandoned (its
// transaction state was discarded by the cache controller's recovery).
func (pr *Processor) Restore(s Snapshot) {
	pr.gen.Restore(s.Gen)
	pr.instrs = s.Instrs
	pr.carry = s.Carry
	pr.epoch++
	pr.inFlight = false
	pr.running = false
	pr.pendingStall = 0
}

// batchQuantum bounds how much simulated time one processor event may
// cover when executing cache-hit runs inline. Small relative to the
// checkpoint interval, so edge-relative skew stays negligible, but large
// enough to amortize event overhead.
const batchQuantum = sim.Time(512)

// next executes operations until a transactional (miss/upgrade) access or
// the batch quantum is exhausted. Cache hits are applied inline through
// the cache controller's fast path; only misses and quantum boundaries
// touch the event queue.
func (pr *Processor) next() {
	if !pr.running || pr.inFlight {
		return
	}
	pr.inFlight = true
	ep := pr.epoch
	local := pr.pendingStall
	pr.pendingStall = 0

	for {
		op := pr.gen.Next()
		total := op.NonMemInstrs + pr.carry
		local += sim.Time(total / pr.p.NonMemIPC)
		pr.carry = total % pr.p.NonMemIPC

		if op.IsIO {
			pr.stats.IOOps++
			if pr.out != nil {
				pr.out.Write(op.IOVal, pr.cc.CCN())
			}
			local++
			pr.instrs += uint64(op.NonMemInstrs) + 1
		} else if lat, ok := pr.cc.FastAccess(op.Addr, op.IsStore, op.StoreVal); ok {
			pr.stats.MemRefs++
			local += lat
			pr.instrs += uint64(op.NonMemInstrs) + 1
		} else {
			// Transactional access: issue through the blocking slow
			// path after the accumulated local time elapses.
			pr.eng.After(local, func() {
				if pr.epoch != ep {
					return
				}
				pr.issueSlow(op, ep)
			})
			return
		}
		if local >= batchQuantum {
			pr.eng.After(local, func() {
				if pr.epoch != ep {
					return
				}
				pr.inFlight = false
				pr.next()
			})
			return
		}
	}
}

func (pr *Processor) issueSlow(op workload.Op, ep int) {
	complete := func() {
		if pr.epoch != ep {
			return
		}
		pr.instrs += uint64(op.NonMemInstrs) + 1
		pr.inFlight = false
		pr.next()
	}
	pr.stats.MemRefs++
	if op.IsStore {
		pr.cc.Store(op.Addr, op.StoreVal, complete)
		return
	}
	pr.cc.Load(op.Addr, func(uint64) { complete() })
}

// CCN exposes the node's current checkpoint number (the cache
// controller's, which ticks on the same node clock edge).
func (pr *Processor) CCN() msg.CN { return pr.cc.CCN() }
