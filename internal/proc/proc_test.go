package proc

import (
	"testing"

	"safetynet/internal/config"
	"safetynet/internal/iodev"
	"safetynet/internal/msg"
	"safetynet/internal/network"
	"safetynet/internal/protocol"
	"safetynet/internal/sim"
	"safetynet/internal/topology"
	"safetynet/internal/workload"
)

// rig wires one processor to a real 4-node memory system.
type rig struct {
	eng *sim.Engine
	pr  *Processor
	cc  *protocol.CacheController
	out *iodev.OutputBuffer
	gen *workload.Synthetic
}

func newRig(t *testing.T, prof workload.Profile, seed uint64) *rig {
	t.Helper()
	p := config.Default()
	p.NumNodes = 4
	p.TorusWidth, p.TorusHeight = 2, 2
	p.L1Bytes = 4 << 10
	p.L2Bytes = 16 << 10
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	nw := network.New(eng, topology.New(2, 2), p)
	home := protocol.InterleavedHome(p.BlockBytes, p.NumNodes)
	var ccs []*protocol.CacheController
	var dirs []*protocol.DirController
	for n := 0; n < 4; n++ {
		ccs = append(ccs, protocol.NewCacheController(n, eng, nw, p, home))
		dirs = append(dirs, protocol.NewDirController(n, eng, nw, p))
	}
	for n := 0; n < 4; n++ {
		n := n
		nw.Attach(n, func(m *msg.Message) {
			switch m.Type {
			case msg.GETS, msg.GETX, msg.PUTX, msg.AckDone:
				dirs[n].Handle(m)
			default:
				ccs[n].Handle(m)
			}
		})
	}
	gen := workload.NewSynthetic(prof, 0, seed)
	out := iodev.NewOutputBuffer()
	pr := New(0, eng, p, ccs[0], gen, out)
	return &rig{eng: eng, pr: pr, cc: ccs[0], out: out, gen: gen}
}

func TestProcessorMakesProgress(t *testing.T) {
	r := newRig(t, workload.Barnes(), 1)
	r.pr.Start()
	r.eng.Run(100_000)
	if r.pr.Instrs() == 0 {
		t.Fatal("no instructions retired")
	}
	if r.pr.Stats().MemRefs == 0 {
		t.Fatal("no memory references issued")
	}
	// The blocking core with a realistic workload retires well below
	// peak IPC but must be in a plausible band.
	ipc := float64(r.pr.Instrs()) / 100_000
	if ipc < 0.01 || ipc > 4.0 {
		t.Fatalf("IPC = %.2f outside plausible band", ipc)
	}
}

func TestPauseStopsProgress(t *testing.T) {
	r := newRig(t, workload.Barnes(), 2)
	r.pr.Start()
	r.eng.Run(20_000)
	r.pr.Pause()
	r.eng.Run(25_000) // drain the in-flight op
	frozen := r.pr.Instrs()
	r.eng.Run(60_000)
	if r.pr.Instrs() != frozen {
		t.Fatal("paused processor retired instructions")
	}
	r.pr.Resume()
	r.eng.Run(100_000)
	if r.pr.Instrs() <= frozen {
		t.Fatal("resumed processor made no progress")
	}
}

func TestResumeIdempotent(t *testing.T) {
	r := newRig(t, workload.Barnes(), 3)
	r.pr.Start()
	r.pr.Resume() // second resume must not double-schedule
	r.pr.Resume()
	r.eng.Run(50_000)
	if !r.pr.Running() {
		t.Fatal("processor should be running")
	}
}

func TestSnapshotRestoreReplaysDeterministically(t *testing.T) {
	r := newRig(t, workload.Barnes(), 4)
	r.pr.Start()
	r.eng.Run(30_000)
	r.pr.Pause()
	r.eng.Run(25_000)
	snap := r.pr.Snapshot()
	instrs := r.pr.Instrs()

	r.pr.Resume()
	r.eng.Run(80_000)
	if r.pr.Instrs() <= instrs {
		t.Fatal("no forward progress")
	}

	r.pr.Restore(snap)
	if r.pr.Instrs() != instrs {
		t.Fatalf("Instrs after restore = %d, want %d", r.pr.Instrs(), instrs)
	}
	if r.pr.Running() {
		t.Fatal("restored processor must stay paused until restart")
	}
	r.pr.Resume()
	r.eng.Run(r.eng.Now() + 50_000)
	if r.pr.Instrs() <= instrs {
		t.Fatal("re-execution made no progress")
	}
}

func TestCheckpointStallCharged(t *testing.T) {
	r := newRig(t, workload.Barnes(), 5)
	r.pr.Start()
	r.pr.AddCheckpointStall()
	r.pr.AddCheckpointStall()
	r.eng.Run(50_000)
	if got := r.pr.Stats().CkptStallCycles; got != 200 {
		t.Fatalf("CkptStallCycles = %d, want 200", got)
	}
}

func TestIOOpsReachOutputBuffer(t *testing.T) {
	prof := workload.Barnes()
	prof.IOPer100k = 2000 // frequent, to be observable
	r := newRig(t, prof, 6)
	r.pr.Start()
	r.eng.Run(300_000)
	if r.pr.Stats().IOOps == 0 {
		t.Skip("workload generated no I/O in window")
	}
	if r.out.PendingCount() == 0 && len(r.out.Released()) == 0 {
		t.Fatal("I/O ops did not reach the output buffer")
	}
}

func TestStaleCallbacksIgnoredAfterRestore(t *testing.T) {
	// A restore mid-operation abandons the in-flight op: its completion
	// callback must not corrupt the restored instruction count.
	r := newRig(t, workload.Stress(), 7)
	r.pr.Start()
	r.eng.Run(5_000)
	snap := r.pr.Snapshot()
	instrs := r.pr.Instrs()
	// Restore while an operation is likely in flight.
	r.pr.Restore(snap)
	r.eng.Run(30_000) // stale callbacks fire harmlessly
	if r.pr.Instrs() != instrs {
		t.Fatalf("stale callback mutated state: %d != %d", r.pr.Instrs(), instrs)
	}
}
