// Package safetynet is a full-system reproduction of "SafetyNet: Improving
// the Availability of Shared Memory Multiprocessors with Global
// Checkpoint/Recovery" (Sorin, Martin, Hill, Wood — ISCA 2002).
//
// It simulates a 16-way shared-memory multiprocessor — blocking
// processors, two-level caches, a MOSI directory protocol, and a 2D-torus
// interconnect of half-switches — and implements SafetyNet on top:
// Checkpoint Log Buffers, checkpoint coordination in logical time,
// pipelined background validation, and global recovery/restart. The two
// running-example faults of the paper (a dropped coherence message and a
// killed half-switch) can be injected into any run; the unprotected
// baseline crashes where the protected system takes a sub-millisecond
// recovery.
//
// Quick start:
//
//	cfg := safetynet.DefaultConfig()
//	sys, err := safetynet.New(cfg, "oltp")
//	if err != nil { ... }
//	sys.Start()
//	sys.Run(2_000_000)
//	fmt.Println(sys.Summary())
//
// The experiment harness regenerating every table and figure of the
// paper's evaluation is exposed through RunTable2, RunFig5 ... RunDetect;
// cmd/snbench wraps them.
package safetynet

import (
	"fmt"
	"strings"

	"safetynet/internal/config"
	"safetynet/internal/harness"
	"safetynet/internal/machine"
	"safetynet/internal/sim"
	"safetynet/internal/workload"
)

// Config holds every parameter of the simulated target system; see
// DefaultConfig for the paper's Table 2 values.
type Config = config.Params

// DefaultConfig returns the paper's target system with SafetyNet enabled.
func DefaultConfig() Config { return config.Default() }

// UnprotectedConfig returns the baseline system without SafetyNet.
func UnprotectedConfig() Config { return config.Unprotected() }

// Workloads lists the available workload presets (the paper's five
// evaluation workloads plus a protocol stress profile).
func Workloads() []string { return workload.Names() }

// PaperWorkloads lists the five evaluation workloads in Figure 5 order.
func PaperWorkloads() []string { return workload.PaperWorkloads() }

// System is one simulated machine running a workload.
type System struct {
	m        *machine.Machine
	cfg      Config
	workload string
}

// New builds a system running the named workload preset on every
// processor.
func New(cfg Config, workloadName string) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	return &System{m: machine.New(cfg, prof), cfg: cfg, workload: workloadName}, nil
}

// Start launches the processors and, when SafetyNet is enabled, the
// checkpoint clock and service controllers.
func (s *System) Start() { s.m.Start() }

// Run advances the simulation to the given absolute cycle (1 cycle = 1 ns
// at the modeled 1 GHz) and returns the reached time. A crash of the
// unprotected baseline stops the run early.
func (s *System) Run(untilCycle uint64) uint64 {
	return uint64(s.m.Run(sim.Time(untilCycle)))
}

// RunFor advances the simulation by the given number of cycles.
func (s *System) RunFor(cycles uint64) uint64 {
	return uint64(s.m.Run(s.m.Eng.Now() + sim.Time(cycles)))
}

// Now returns the current simulation time in cycles.
func (s *System) Now() uint64 { return uint64(s.m.Eng.Now()) }

// InjectDropOnce arms a one-shot transient interconnect fault: the first
// data-bearing coherence message sent at or after the given cycle is lost
// (paper Table 1, "Dropped Message").
func (s *System) InjectDropOnce(atCycle uint64) {
	s.m.Net.InjectDropOnce(sim.Time(atCycle))
}

// InjectDropEvery arms periodic transient faults: one message lost per
// period (Experiment 2 drops one per 100M cycles — ten per second).
func (s *System) InjectDropEvery(startCycle, periodCycles uint64) {
	s.m.Net.InjectDropEvery(sim.Time(startCycle), sim.Time(periodCycles))
}

// KillSwitch schedules the hard fault of Experiment 3: node's east-west
// half-switch dies at the given cycle, losing its buffered messages;
// routing reconfigures around it (paper Table 1, "Failed Switch").
func (s *System) KillSwitch(node int, atCycle uint64) {
	s.m.Net.KillSwitchAt(s.m.Topo.EWSwitch(node), sim.Time(atCycle))
}

// Result summarizes a run.
type Result struct {
	Workload  string
	Protected bool
	Cycles    uint64
	// Instrs is durable forward progress: instructions retired and not
	// rolled back by recoveries.
	Instrs uint64
	// IPC is aggregate instructions per cycle across all processors.
	IPC float64

	Crashed    bool
	CrashCause string

	Recoveries       int
	RecoveryPoint    uint32
	InstrsRolledBack uint64

	StoresLogged    uint64
	TransfersLogged uint64
	MessagesSent    uint64
	MessagesDropped uint64
}

// Result returns the current run summary.
func (s *System) Result() Result {
	r := Result{
		Workload:         s.workload,
		Protected:        s.cfg.SafetyNetEnabled,
		Cycles:           uint64(s.m.Eng.Now()),
		Instrs:           s.m.TotalInstrs(),
		Crashed:          s.m.Crashed,
		CrashCause:       s.m.CrashCause,
		RecoveryPoint:    uint32(s.m.RPCN()),
		InstrsRolledBack: s.m.InstrsRolledBack,
		MessagesSent:     s.m.Net.Stats().Sent,
		MessagesDropped:  s.m.Net.DroppedTotal(),
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instrs) / float64(r.Cycles)
	}
	if svc := s.m.ActiveService(); svc != nil {
		r.Recoveries = len(svc.Recoveries())
	}
	for _, n := range s.m.Nodes {
		cs := n.CC.Stats()
		r.StoresLogged += cs.StoresLogged
		r.TransfersLogged += cs.TransfersLogged
	}
	return r
}

// Summary renders the run summary as text.
func (s *System) Summary() string {
	r := s.Result()
	var b strings.Builder
	mode := "SafetyNet"
	if !r.Protected {
		mode = "unprotected"
	}
	fmt.Fprintf(&b, "workload %s on 16-way %s system\n", r.Workload, mode)
	fmt.Fprintf(&b, "  cycles:            %d (%.3f ms at 1 GHz)\n", r.Cycles, float64(r.Cycles)/1e6)
	fmt.Fprintf(&b, "  instructions:      %d (aggregate IPC %.3f)\n", r.Instrs, r.IPC)
	if r.Crashed {
		fmt.Fprintf(&b, "  CRASHED: %s\n", r.CrashCause)
	}
	if r.Protected {
		fmt.Fprintf(&b, "  recovery point:    checkpoint %d\n", r.RecoveryPoint)
		fmt.Fprintf(&b, "  recoveries:        %d (rolled back %d instructions)\n", r.Recoveries, r.InstrsRolledBack)
		fmt.Fprintf(&b, "  CLB log appends:   %d store overwrites, %d ownership transfers\n",
			r.StoresLogged, r.TransfersLogged)
	}
	fmt.Fprintf(&b, "  network:           %d messages sent, %d dropped\n", r.MessagesSent, r.MessagesDropped)
	return b.String()
}

// Machine exposes the underlying machine for white-box inspection (used
// by the examples and the randomized checker).
func (s *System) Machine() *machine.Machine { return s.m }

// ---------------------------------------------------------------------
// Experiment harness (one entry point per table/figure)
// ---------------------------------------------------------------------

// ExperimentOptions sizes an experiment run; see DefaultOptions and
// QuickOptions.
type ExperimentOptions = harness.Options

// DefaultOptions is the standard experiment sizing (three perturbed runs).
func DefaultOptions() ExperimentOptions { return harness.DefaultOptions() }

// QuickOptions trades precision for speed.
func QuickOptions() ExperimentOptions { return harness.QuickOptions() }

// RunTable2 renders the target-system parameter table.
func RunTable2(cfg Config) string { return harness.Table2(cfg) }

// RunFig5 regenerates Figure 5 (Experiments 1-3) and returns its report.
func RunFig5(cfg Config, o ExperimentOptions) string { return harness.Fig5(cfg, o).Render() }

// RunFig6 regenerates Figure 6 (store/coherence frequencies vs interval).
func RunFig6(cfg Config, o ExperimentOptions) string { return harness.Fig6(cfg, o).Render() }

// RunFig7 regenerates Figure 7 (cache bandwidth vs interval).
func RunFig7(cfg Config, o ExperimentOptions) string { return harness.Fig7(cfg, o).Render() }

// RunFig8 regenerates Figure 8 (performance vs CLB size).
func RunFig8(cfg Config, o ExperimentOptions) string { return harness.Fig8(cfg, o).Render() }

// RunRecovery measures recovery latency and lost work (§4.2).
func RunRecovery(cfg Config, o ExperimentOptions) string { return harness.Recovery(cfg, o).Render() }

// RunDetect sweeps fault-detection latency (§3.4).
func RunDetect(cfg Config, o ExperimentOptions) string { return harness.Detect(cfg, o).Render() }
