// Package safetynet is a full-system reproduction of "SafetyNet: Improving
// the Availability of Shared Memory Multiprocessors with Global
// Checkpoint/Recovery" (Sorin, Martin, Hill, Wood — ISCA 2002).
//
// It simulates a 16-way shared-memory multiprocessor — blocking
// processors, two-level caches, a MOSI directory protocol, and a 2D-torus
// interconnect of half-switches — and implements SafetyNet on top:
// Checkpoint Log Buffers, checkpoint coordination in logical time,
// pipelined background validation, and global recovery/restart. The two
// running-example faults of the paper (a dropped coherence message and a
// killed half-switch) can be injected into any run; the unprotected
// baseline crashes where the protected system takes a sub-millisecond
// recovery.
//
// Two coherence backends share one harness (paper footnote 1, §2.3):
// Config.Protocol selects the evaluated directory/torus machine
// (ProtocolDirectory, the default) or the broadcast snooping system on a
// totally ordered bus (ProtocolSnoop), where logical time is simply the
// total snoop order. Experiments, fault plans, and CLI flags work on
// both; events a backend cannot express (a half-switch kill on the bus)
// are rejected at arm time with ErrFaultUnsupported.
//
// Quick start:
//
//	cfg := safetynet.DefaultConfig()
//	sys, err := safetynet.New(cfg, "oltp")
//	if err != nil { ... }
//	sys.Start()
//	sys.Run(2_000_000)
//	fmt.Println(sys.Summary())
//
// Runs are also first-class data: a Scenario bundles workload,
// configuration overrides, warmup/measurement phases, and a typed fault
// plan into one JSON-round-trippable value (LoadScenario, Scenario.Run),
// and a backend-neutral RunObserver hooks checkpoint advances,
// recoveries, fault firings, and crashes without white-box access.
//
// The experiment harness regenerating every table and figure of the
// paper's evaluation is exposed through a registry: Experiments() lists
// the catalog and RunExperiment runs one entry, optionally fanning its
// independent simulations across a worker pool, and returns a structured
// Report that renders as text and marshals to JSON or CSV. The registry
// is open — NewExperiment builds and registers experiments from any
// package, and every built-in table and figure is defined through the
// same builder; cmd/snbench drives the registry. (The per-figure
// RunTable2/RunFig5/... wrappers were retired in favor of the uniform
// RunExperiment(name, cfg, opts).)
package safetynet

import (
	"fmt"
	"strings"

	"safetynet/internal/backend"
	"safetynet/internal/config"
	"safetynet/internal/fault"
	"safetynet/internal/harness"
	"safetynet/internal/runner"
	"safetynet/internal/sim"
	"safetynet/internal/topology"
	"safetynet/internal/workload"
)

// Config holds every parameter of the simulated target system; see
// DefaultConfig for the paper's Table 2 values.
type Config = config.Params

// Protocol backends selectable through Config.Protocol: the paper's
// evaluated MOSI directory over a 2D torus, and footnote 1's broadcast
// snooping variant on a totally ordered bus.
const (
	ProtocolDirectory = config.ProtocolDirectory
	ProtocolSnoop     = config.ProtocolSnoop
)

// Protocols lists the available coherence-protocol backends.
func Protocols() []string { return config.Protocols() }

// DefaultConfig returns the paper's target system with SafetyNet enabled.
func DefaultConfig() Config { return config.Default() }

// UnprotectedConfig returns the baseline system without SafetyNet.
func UnprotectedConfig() Config { return config.Unprotected() }

// SnoopConfig returns the default configuration aimed at the broadcast
// snooping backend (always SafetyNet-protected; the snoop system derives
// its bus-level sizing from these shared parameters).
func SnoopConfig() Config {
	p := config.Default()
	p.Protocol = config.ProtocolSnoop
	return p
}

// Workloads lists the available workload presets (the paper's five
// evaluation workloads plus a protocol stress profile).
func Workloads() []string { return workload.Names() }

// PaperWorkloads lists the five evaluation workloads in Figure 5 order.
func PaperWorkloads() []string { return workload.PaperWorkloads() }

// System is one simulated machine running a workload, on whichever
// coherence backend the configuration selects. The backend is sealed:
// instrumentation goes through Observe and the protocol-neutral
// Result/Counters surface, never through white-box accessors.
type System struct {
	be       backend.Backend
	cfg      Config
	workload string
}

// New builds a system running the named workload preset on every
// processor. Config.Protocol selects the backend: the MOSI directory
// machine (default) or the broadcast snooping system. Dependent
// SafetyNet parameters are normalized first (config.Params.Normalize),
// so front ends adjusting the checkpoint interval alone cannot assemble
// an inconsistent signoff or watchdog.
func New(cfg Config, workloadName string) (*System, error) {
	cfg = cfg.Normalize()
	prof, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	be, err := runner.NewBackend(cfg, prof)
	if err != nil {
		return nil, err
	}
	return &System{be: be, cfg: cfg, workload: workloadName}, nil
}

// Start launches the processors and, when SafetyNet is enabled, the
// checkpoint clock and service controllers.
func (s *System) Start() { s.be.Start() }

// Run advances the simulation to the given absolute cycle (1 cycle = 1 ns
// at the modeled 1 GHz) and returns the reached time. A crash of the
// unprotected baseline stops the run early.
func (s *System) Run(untilCycle uint64) uint64 {
	return uint64(s.be.Run(sim.Time(untilCycle)))
}

// RunFor advances the simulation by the given number of cycles.
func (s *System) RunFor(cycles uint64) uint64 {
	return uint64(s.be.Run(s.be.Now() + sim.Time(cycles)))
}

// Now returns the current simulation time in cycles.
func (s *System) Now() uint64 { return uint64(s.be.Now()) }

// Quiesce pauses the processors and drains outstanding transactions
// within the budget, reporting success. CheckCoherence is only
// meaningful at quiescence.
func (s *System) Quiesce(budgetCycles uint64) bool {
	return s.be.Quiesce(sim.Time(budgetCycles))
}

// Resume restarts the processors after a Quiesce.
func (s *System) Resume() { s.be.Resume() }

// CheckCoherence verifies the protocol invariants at quiescence and
// returns the violations (empty means coherent).
func (s *System) CheckCoherence() []string { return s.be.CheckCoherence() }

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

// FaultEvent is one typed fault of a composable plan; build events with
// DropOnce, DropEvery, KillEWSwitch, KillNSSwitch, CorruptOnce,
// MisrouteOnce and DuplicateOnce, and arm any combination with
// System.Inject — a single run can layer faults (e.g. periodic message
// drops plus a half-switch kill).
type FaultEvent = fault.Event

// FaultPlan is an ordered list of fault events armed together on one
// run; the zero value is fault-free.
type FaultPlan = fault.Plan

// DropOnce is a one-shot transient interconnect fault: the first
// data-bearing coherence message sent at or after the given cycle is lost
// (paper Table 1, "Dropped Message").
func DropOnce(atCycle uint64) FaultEvent {
	return fault.DropOnce{At: sim.Time(atCycle)}
}

// DropEvery is the periodic transient fault of Experiment 2: one message
// lost per period (the paper drops one per 100M cycles — ten per second).
func DropEvery(startCycle, periodCycles uint64) FaultEvent {
	return fault.DropEvery{Start: sim.Time(startCycle), Period: sim.Time(periodCycles)}
}

// KillEWSwitch is the hard fault of Experiment 3: the node's east-west
// half-switch dies at the given cycle, losing its buffered messages;
// routing reconfigures around it (paper Table 1, "Failed Switch").
func KillEWSwitch(node int, atCycle uint64) FaultEvent {
	return fault.KillSwitch{Node: node, Axis: topology.EW, At: sim.Time(atCycle)}
}

// KillNSSwitch kills the node's north-south half-switch instead.
func KillNSSwitch(node int, atCycle uint64) FaultEvent {
	return fault.KillSwitch{Node: node, Axis: topology.NS, At: sim.Time(atCycle)}
}

// CorruptOnce damages one data-bearing coherence message in flight; the
// endpoint's error-detecting code discovers it (the paper's CRC example).
func CorruptOnce(atCycle uint64) FaultEvent {
	return fault.CorruptOnce{At: sim.Time(atCycle)}
}

// MisrouteOnce delivers one data-bearing coherence message to the wrong
// node (paper §5.1).
func MisrouteOnce(atCycle uint64) FaultEvent {
	return fault.MisrouteOnce{At: sim.Time(atCycle)}
}

// DuplicateOnce delivers one coherence message twice (paper §5.1).
func DuplicateOnce(atCycle uint64) FaultEvent {
	return fault.DuplicateOnce{At: sim.Time(atCycle)}
}

// ErrFaultUnsupported marks a fault event the selected backend cannot
// express (e.g. a half-switch kill on the snooping bus); Inject wraps it,
// so callers test with errors.Is.
var ErrFaultUnsupported = fault.ErrUnsupported

// Inject arms the given fault events on this system, in order. Call it
// before Start; an event with impossible parameters — or one the selected
// backend cannot express (ErrFaultUnsupported) — reports an error and
// arms nothing further.
func (s *System) Inject(events ...FaultEvent) error {
	return fault.Plan(events).Arm(s.be.FaultTarget())
}

// Result summarizes a run.
type Result struct {
	Workload string
	// Protocol is the coherence backend the run used.
	Protocol  string
	Protected bool
	Cycles    uint64
	// Instrs is durable forward progress: instructions retired and not
	// rolled back by recoveries.
	Instrs uint64
	// IPC is aggregate instructions per cycle across all processors.
	IPC float64

	Crashed    bool
	CrashCause string

	Recoveries       int
	RecoveryPoint    uint32
	InstrsRolledBack uint64

	StoresLogged    uint64
	TransfersLogged uint64
	MessagesSent    uint64
	MessagesDropped uint64
}

// Result returns the current run summary.
func (s *System) Result() Result {
	c := s.be.Counters()
	crashed, cause := s.be.CrashInfo()
	r := Result{
		Workload:         s.workload,
		Protocol:         s.cfg.ProtocolName(),
		Protected:        s.cfg.SafetyNetEnabled,
		Cycles:           uint64(s.be.Now()),
		Instrs:           c.Instrs,
		Crashed:          crashed,
		CrashCause:       cause,
		RecoveryPoint:    uint32(s.be.RPCN()),
		Recoveries:       c.Recoveries,
		InstrsRolledBack: c.InstrsRolledBack,
		StoresLogged:     c.StoresLogged,
		TransfersLogged:  c.TransfersLogged,
		MessagesSent:     c.MessagesSent,
		MessagesDropped:  c.MessagesDropped,
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instrs) / float64(r.Cycles)
	}
	return r
}

// Summary renders the run summary as text.
func (s *System) Summary() string {
	r := s.Result()
	var b strings.Builder
	mode := "SafetyNet"
	if !r.Protected {
		mode = "unprotected"
	}
	fmt.Fprintf(&b, "workload %s on %d-node %s %s system\n",
		r.Workload, s.cfg.NumNodes, r.Protocol, mode)
	fmt.Fprintf(&b, "  cycles:            %d (%.3f ms at 1 GHz)\n", r.Cycles, float64(r.Cycles)/1e6)
	fmt.Fprintf(&b, "  instructions:      %d (aggregate IPC %.3f)\n", r.Instrs, r.IPC)
	if r.Crashed {
		fmt.Fprintf(&b, "  CRASHED: %s\n", r.CrashCause)
	}
	if r.Protected {
		fmt.Fprintf(&b, "  recovery point:    checkpoint %d\n", r.RecoveryPoint)
		fmt.Fprintf(&b, "  recoveries:        %d (rolled back %d instructions)\n", r.Recoveries, r.InstrsRolledBack)
		fmt.Fprintf(&b, "  CLB log appends:   %d store overwrites, %d ownership transfers\n",
			r.StoresLogged, r.TransfersLogged)
	}
	fmt.Fprintf(&b, "  network:           %d messages sent, %d dropped\n", r.MessagesSent, r.MessagesDropped)
	return b.String()
}

// RunObserver receives backend-neutral run events — recovery-point
// advances, recovery start/completion, armed faults firing, and crashes
// of the unprotected baseline. Every callback is optional (nil fields are
// skipped), the same observer works on both backends, and callbacks run
// synchronously inside the simulation, so common instrumentation no
// longer needs the white-box Machine()/Snoop() accessors.
type RunObserver = backend.Observer

// Observe registers a run observer. Call before Start; multiple
// observers fire in registration order.
func (s *System) Observe(o *RunObserver) { s.be.Observe(o) }

// Protocol reports which coherence backend this system runs
// ("directory" or "snoop").
func (s *System) Protocol() string { return s.cfg.ProtocolName() }

// ---------------------------------------------------------------------
// Experiment harness (registry of tables/figures)
// ---------------------------------------------------------------------

// ExperimentOptions sizes an experiment run; see DefaultOptions and
// QuickOptions. It is the one sizing surface shared by experiments,
// campaigns, and explorations (runner.Options): Workers is the
// worker-pool width (0 = one per CPU) everywhere.
type ExperimentOptions = runner.Options

// DefaultOptions is the standard experiment sizing (three perturbed runs).
func DefaultOptions() ExperimentOptions { return runner.DefaultOptions() }

// QuickOptions trades precision for speed.
func QuickOptions() ExperimentOptions { return runner.QuickOptions() }

// Report is the structured result of one experiment: labeled design
// points with mean ± stddev values and crash markers. Render prints the
// paper-style text table; JSON and CSV marshal it losslessly.
type Report = harness.Report

// Row is one report row: label cells followed by numeric cells.
type Row = harness.Row

// Value is one numeric report cell: a mean with an error bar, or a
// crash marker.
type Value = harness.Value

// BarSpec selects a report value column for the text bar chart.
type BarSpec = harness.BarSpec

// Scalar builds a single-observation report Value.
func Scalar(v float64) Value { return harness.Scalar(v) }

// CrashedValue marks a design point whose runs crashed.
func CrashedValue() Value { return harness.CrashedValue() }

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	Name        string
	Title       string
	Description string
}

// Experiments lists the registered experiment catalog in paper order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range harness.Experiments() {
		out = append(out, ExperimentInfo{Name: e.Name, Title: e.Title, Description: e.Description})
	}
	return out
}

// RunExperiment runs one registered experiment against the given
// configuration. Options.Workers sizes the worker pool the experiment's
// independent simulations fan across without changing any result.
// Unknown names report the valid ones.
func RunExperiment(name string, cfg Config, o ExperimentOptions) (*Report, error) {
	return harness.RunExperiment(name, cfg, o)
}

// ---------------------------------------------------------------------
// Public experiment builder
// ---------------------------------------------------------------------

// Cycles is the simulation-time unit (1 cycle = 1 ns at the modeled
// 1 GHz); experiment options and run windows are expressed in it.
type Cycles = sim.Time

// ExperimentPoint is one simulation of an experiment's design-point
// grid: a labeled position along the experiment's dimensions plus the
// concrete run it expands to.
type ExperimentPoint = harness.Point

// ExperimentRun is one concrete simulation: parameters, workload, the
// warmup/measurement windows, and the fault plan armed before it starts.
type ExperimentRun = runner.RunConfig

// ExperimentRunResult carries everything a run measured; Reduce
// functions fold a grid of these into a Report.
type ExperimentRunResult = runner.RunResult

// ExperimentBuilder assembles one experiment for registration; see
// NewExperiment.
type ExperimentBuilder = harness.Builder

// NewExperiment starts building an experiment for the registry — the
// same builder every built-in table and figure of the paper registers
// through. An experiment declares a grid (expanding a base configuration
// and options into labeled runs) and a reduce step (folding the grid's
// results into a structured Report); Register adds it to the catalog
// that Experiments lists and RunExperiment and cmd/snbench execute:
//
//	err := safetynet.NewExperiment("sweep", "My Sweep", "what it measures").
//		Order(100).
//		Grid(func(base safetynet.Config, o safetynet.ExperimentOptions) []safetynet.ExperimentPoint {
//			...
//		}).
//		Reduce(func(base safetynet.Config, o safetynet.ExperimentOptions,
//			pts []safetynet.ExperimentPoint, res []safetynet.ExperimentRunResult) *safetynet.Report {
//			...
//		}).
//		Register()
func NewExperiment(name, title, description string) *ExperimentBuilder {
	return harness.NewExperiment(name, title, description)
}
