package safetynet

import (
	"context"
	"net"

	"safetynet/internal/serve"
)

// ServeOptions sizes the campaign-serving daemon: store directory,
// shard workers per job, checkpoint cadence, and queue bound (see
// cmd/snserved for the CLI front end).
type ServeOptions = serve.Options

// ServeJobStatus is one served campaign's status document: state
// (queued/running/done/failed), progress, per-shard counters, and —
// once finished — crash and expectation-failure counts.
type ServeJobStatus = serve.JobStatus

// ServeEvent is one per-run completion on a served campaign's SSE
// stream; Seq is the stream position replayable via ?from=N.
type ServeEvent = serve.Event

// ServeEnd is the stream's terminal frame.
type ServeEnd = serve.End

// Served job states.
const (
	ServeStateQueued  = serve.StateQueued
	ServeStateRunning = serve.StateRunning
	ServeStateDone    = serve.StateDone
	ServeStateFailed  = serve.StateFailed
)

// ServeClient talks to a running snserved daemon: Submit, Status,
// Report (bytes identical to a local sncampaign run), Events (SSE with
// replay), Wait, and the worker-pull protocol (Lease, PushRecords,
// Heartbeat). Setting Retry makes transient failures back off and
// retry.
type ServeClient = serve.Client

// NewServeClient builds a client for the daemon at baseURL (e.g.
// "http://localhost:8321").
func NewServeClient(baseURL string) *ServeClient { return serve.NewClient(baseURL) }

// ServeRetryPolicy caps transient-failure retries (connection errors,
// HTTP 5xx) with exponential backoff + jitter; the zero value is the
// default policy. Install it on a ServeClient's Retry field, or use it
// with serve-side tooling directly.
type ServeRetryPolicy = serve.RetryPolicy

// ServeWorker is a distributed pull worker for the snserved daemon: it
// leases shards of the executing campaign, runs them with the same
// deterministic machinery a local pool uses, streams records back, and
// heartbeats its leases (see cmd/snworker for the CLI front end). A
// worker that dies or partitions away loses its lease after one TTL;
// the shard is re-leased at a higher fencing token and the dead
// worker's late writes are rejected, so the final report is
// byte-identical no matter how many workers lived or died.
type ServeWorker = serve.Worker

// NewWorker builds a ServeWorker pulling from the daemon at baseURL
// under the given unique worker id, with the default transient-retry
// policy installed.
func NewWorker(baseURL, id string) *ServeWorker { return serve.NewWorker(baseURL, id) }

// Serve runs the campaign-serving daemon on addr until ctx ends: an
// HTTP/JSON API (submit campaigns, stream per-run completions over
// SSE, fetch reports) over a persistent job store whose per-shard
// completion checkpoints make a killed-and-restarted daemon resume
// mid-campaign — the service-level analogue of the paper's global
// checkpoint/recovery. Reports served over HTTP are byte-identical to
// local sncampaign output for the same campaign.
func Serve(ctx context.Context, addr string, opts ServeOptions) error {
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	return s.ListenAndServe(ctx, addr)
}

// ServeListener is Serve on an already-bound listener (tests and
// embedders that need to know the port before serving).
func ServeListener(ctx context.Context, ln net.Listener, opts ServeOptions) error {
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
