package safetynet

import (
	"context"
	"net"

	"safetynet/internal/serve"
)

// ServeOptions sizes the campaign-serving daemon: store directory,
// shard workers per job, checkpoint cadence, and queue bound (see
// cmd/snserved for the CLI front end).
type ServeOptions = serve.Options

// ServeJobStatus is one served campaign's status document: state
// (queued/running/done/failed), progress, per-shard counters, and —
// once finished — crash and expectation-failure counts.
type ServeJobStatus = serve.JobStatus

// ServeEvent is one per-run completion on a served campaign's SSE
// stream; Seq is the stream position replayable via ?from=N.
type ServeEvent = serve.Event

// ServeEnd is the stream's terminal frame.
type ServeEnd = serve.End

// Served job states.
const (
	ServeStateQueued  = serve.StateQueued
	ServeStateRunning = serve.StateRunning
	ServeStateDone    = serve.StateDone
	ServeStateFailed  = serve.StateFailed
)

// ServeClient talks to a running snserved daemon: Submit, Status,
// Report (bytes identical to a local sncampaign run), Events (SSE with
// replay), and Wait.
type ServeClient = serve.Client

// NewServeClient builds a client for the daemon at baseURL (e.g.
// "http://localhost:8321").
func NewServeClient(baseURL string) *ServeClient { return serve.NewClient(baseURL) }

// Serve runs the campaign-serving daemon on addr until ctx ends: an
// HTTP/JSON API (submit campaigns, stream per-run completions over
// SSE, fetch reports) over a persistent job store whose per-shard
// completion checkpoints make a killed-and-restarted daemon resume
// mid-campaign — the service-level analogue of the paper's global
// checkpoint/recovery. Reports served over HTTP are byte-identical to
// local sncampaign output for the same campaign.
func Serve(ctx context.Context, addr string, opts ServeOptions) error {
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	return s.ListenAndServe(ctx, addr)
}

// ServeListener is Serve on an already-bound listener (tests and
// embedders that need to know the port before serving).
func ServeListener(ctx context.Context, ln net.Listener, opts ServeOptions) error {
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}
